"""Codegen tier: search, generated programs, artifacts, and routing.

The contract under test (``docs/codegen.md``): the HPTT-style search
is deterministic and scored purely by the analytic DRAM model; the
generated :class:`~repro.kernels.codegen.NestProgram` is bit-exact
against the reference on every execution surface; unprofitable
geometries fall back to the index-map route without changing any
existing compile result; descriptors persist as plan-store artifacts
so a warm restart runs zero searches; and the scheduler's ``codegen``
backend routes, falls back, and reports correctly.
"""

import json
import pickle

import numpy as np
import pytest

from repro.core.plan import make_plan
from repro.kernels import codegen as cg
from repro.kernels.common import reference_transpose
from repro.kernels.executor import compile_executor
from repro.runtime.autotune import ThroughputCalibrator
from repro.runtime.scheduler import StreamScheduler
from repro.runtime.store import PlanStore

#: The gated memory-bound geometries, scaled to ~4 MiB for test speed
#: (still above NEST_MIN_BYTES so the search can be profitable).
OD_DIMS, OD_PERM = (64, 32, 16, 16), (3, 2, 1, 0)
OA_DIMS, OA_PERM = (16, 32, 32, 32), (1, 0, 3, 2)


def _nest_program(dims=OD_DIMS, perm=OD_PERM, artifacts=None):
    plan = make_plan(dims, perm)
    program = compile_executor(
        plan.kernel, lowering=False, codegen=True, artifacts=artifacts
    )
    return plan, program


@pytest.fixture(autouse=True)
def _fresh_counters():
    cg.reset_codegen_stats()
    yield
    cg.reset_codegen_stats()


@pytest.fixture(autouse=True)
def _pinned_cache_budget(monkeypatch):
    """Pin the search's cache budget to the historical 768 KiB.

    The budget now probes the host's sysfs cache hierarchy, so the
    profitability/ranking assertions below would flip between machines
    (a big-L2 host makes the unblocked nests in these geometries fit).
    The probe itself is covered by :class:`TestCacheProbe` with
    synthetic sysfs trees.
    """
    monkeypatch.setattr(cg, "CACHE_BUDGET_BYTES", 768 * 1024)


# ----------------------------------------------------------------------
# Search
# ----------------------------------------------------------------------


class TestSearch:
    def test_deterministic(self):
        a = cg.search_nest((32, 32, 64, 128), (3, 2, 1, 0), 8)
        b = cg.search_nest((32, 32, 64, 128), (3, 2, 1, 0), 8)
        a.pop("search_ms"), b.pop("search_ms")
        assert a == b

    def test_descriptor_shape(self):
        desc = cg.search_nest((32, 32, 64, 128), (3, 2, 1, 0), 8)
        assert desc["codegen_version"] == cg.CODEGEN_VERSION
        assert desc["profitable"] is True
        assert len(desc["tiles"]) == 4
        assert desc["order"][0] == 0  # axis 0 leads: the partition axis
        assert desc["cost"] * cg.PROFIT_MARGIN <= desc["indexed_cost"]
        json.dumps(desc)  # artifact records must be JSON-clean

    def test_blocks_critical_axes_only(self):
        """Only where the source's fastest axis lands and the output's
        own fastest axis are ever blocked below their extent."""
        in_shape, axes = (32, 32, 64, 128), (3, 2, 1, 0)
        desc = cg.search_nest(in_shape, axes, 8)
        out_shape = [in_shape[a] for a in axes]
        crit = set(cg.critical_axes(axes))
        for k, (tile, extent) in enumerate(zip(desc["tiles"], out_shape)):
            if tile < extent:
                assert k in crit

    def test_identity_still_beats_indexed(self):
        """Identity is just a copy — the nest must still price below the
        indexed path, which pays for a volume-sized gather map."""
        desc = cg.search_nest((64, 64, 64, 8), (0, 1, 2, 3), 8)
        assert desc["profitable"]

    def test_short_runs_unprofitable(self):
        """Full reversal with tiny trailing extents: every run is a few
        elements no matter how the nest is blocked, so the modelled win
        over indexed falls inside the profit margin and is rejected."""
        desc = cg.search_nest((2, 2, 2, 128, 128, 8), (5, 4, 3, 2, 1, 0), 8)
        assert not desc["profitable"]
        assert desc["cost"] * cg.PROFIT_MARGIN > desc["indexed_cost"]

    def test_cost_model_prefers_measured_best(self):
        """The validated ranking on the od-reverse gate case: blocking
        the critical pair beats the unblocked nest."""
        in_shape, axes = (32, 32, 64, 128), (3, 2, 1, 0)
        out_shape = [in_shape[a] for a in axes]
        best = cg.search_nest(in_shape, axes, 8)
        full = cg.nest_cost(in_shape, axes, out_shape, 8)
        assert best["cost"] < full

    def test_indexed_cost_adds_map_traffic(self):
        in_shape, axes = (32, 32, 64, 128), (3, 2, 1, 0)
        out_shape = [in_shape[a] for a in axes]
        vol = int(np.prod(in_shape))
        idx = cg.indexed_cost(in_shape, axes, 8)
        unblocked = cg.nest_cost(in_shape, axes, out_shape, 8)
        assert idx == pytest.approx(
            unblocked + vol * 8 / cg.LINE_BYTES
        )


# ----------------------------------------------------------------------
# Generated programs
# ----------------------------------------------------------------------


class TestNestProgram:
    @pytest.mark.parametrize(
        "dims,perm", [(OD_DIMS, OD_PERM), (OA_DIMS, OA_PERM)]
    )
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_run_parity(self, dims, perm, dtype):
        plan = make_plan(dims, perm, elem_bytes=np.dtype(dtype).itemsize)
        program = compile_executor(plan.kernel, lowering=False, codegen=True)
        assert program.kind == "nest"
        src = (
            np.random.default_rng(0)
            .standard_normal(plan.layout.volume)
            .astype(dtype)
        )
        ref = reference_transpose(src, plan.layout, plan.perm)
        assert np.array_equal(program.run(src), ref)
        out = np.empty_like(src)
        assert program.run(src, out=out) is out
        assert np.array_equal(out, ref)

    def test_run_batch_parity(self):
        plan, program = _nest_program()
        srcs = np.random.default_rng(1).standard_normal(
            (3, plan.layout.volume)
        )
        refs = np.stack(
            [reference_transpose(s, plan.layout, plan.perm) for s in srcs]
        )
        assert np.array_equal(program.run_batch(srcs), refs)
        outs = np.empty_like(srcs)
        program.run_batch(srcs, out=outs)
        assert np.array_equal(outs, refs)

    def test_partition_covers_output_exactly(self):
        plan, program = _nest_program()
        tasks = program.partition(5)
        rows = program.out_shape[0]
        assert tasks[0][0] == 0 and tasks[-1][1] == rows
        for (lo_a, hi_a), (lo_b, _) in zip(tasks, tasks[1:]):
            assert hi_a == lo_b
        src = np.random.default_rng(2).standard_normal(plan.layout.volume)
        ref = reference_transpose(src, plan.layout, plan.perm)
        out = np.empty_like(src)
        for task in tasks:
            program.run_part(src, out, task)
        assert np.array_equal(out, ref)

    def test_partition_caps_at_rows(self):
        _, program = _nest_program()
        rows = program.out_shape[0]
        assert len(program.partition(rows * 10)) == rows

    def test_pickle_regenerates_from_descriptor(self):
        plan, program = _nest_program()
        clone = pickle.loads(pickle.dumps(program))
        assert clone.kind == "nest"
        assert clone.descriptor["tiles"] == program.descriptor["tiles"]
        assert clone.source == program.source
        src = np.random.default_rng(3).standard_normal(plan.layout.volume)
        assert np.array_equal(clone.run(src), program.run(src))

    def test_source_hash_tracks_source(self):
        _, program = _nest_program()
        sha = program.descriptor["source_sha"]
        assert sha == cg.source_hash(program.source, program.batch_source)
        assert sha != cg.source_hash(program.source)

    def test_backend_reported(self):
        _, program = _nest_program()
        backend = program.descriptor["backend"]
        if cg.native_enabled():
            assert backend == "c"
        else:
            assert backend == cg.compile_backend()
        assert cg.compile_backend() in ("numpy", "numba")
        snap = cg.codegen_stats()
        assert snap["backend"] == cg.compile_backend()
        assert snap["native"]["enabled"] is True
        assert snap["native"]["available"] == cg.native_enabled()


# ----------------------------------------------------------------------
# Compile integration + fallback
# ----------------------------------------------------------------------


class TestCompileIntegration:
    def test_codegen_flag_off_is_unchanged(self):
        plan = make_plan(OD_DIMS, OD_PERM)
        assert compile_executor(plan.kernel, lowering=False).kind == "indexed"

    def test_small_problem_falls_back_without_search(self):
        plan = make_plan((8, 8, 8), (2, 1, 0))
        program = compile_executor(plan.kernel, lowering=False, codegen=True)
        assert program.kind == "indexed"
        stats = cg.codegen_stats()
        assert stats["searches"] == 0
        assert stats["fallbacks"] == 1

    def test_view_lowering_untouched_by_codegen(self):
        plan = make_plan(OD_DIMS, OD_PERM)
        program = compile_executor(plan.kernel, codegen=True)
        assert program.kind in ("view", "region")

    def test_unprofitable_geometry_falls_back_bit_exactly(self):
        # Short-run full reversal above the size floor: searched, rejected.
        plan = make_plan((8, 128, 128, 2, 2, 2), (5, 4, 3, 2, 1, 0))
        program = compile_executor(plan.kernel, lowering=False, codegen=True)
        assert program.kind in ("indexed", "chunked")
        stats = cg.codegen_stats()
        assert stats["fallbacks"] == 1
        src = np.random.default_rng(4).standard_normal(plan.layout.volume)
        ref = reference_transpose(src, plan.layout, plan.perm)
        assert np.array_equal(program.run(src), ref)


# ----------------------------------------------------------------------
# Artifact cache
# ----------------------------------------------------------------------


class TestArtifacts:
    def test_artifact_round_trip(self, tmp_path):
        store = PlanStore(tmp_path / "plans.json")
        _, program = _nest_program(artifacts=store)
        stats = cg.codegen_stats()
        assert stats["searches"] == 1
        assert stats["artifact_misses"] == 1
        assert store.describe()["artifacts"] == 1

        # A second handle on the flushed file: the restarted process.
        cg.reset_codegen_stats()
        warm = PlanStore(tmp_path / "plans.json")
        _, again = _nest_program(artifacts=warm)
        stats = cg.codegen_stats()
        assert stats["searches"] == 0
        assert stats["artifact_hits"] == 1
        assert stats["search_s_saved"] > 0
        assert again.descriptor["tiles"] == program.descriptor["tiles"]

    def test_stale_version_artifact_researched(self, tmp_path):
        store = PlanStore(tmp_path / "plans.json")
        plan = make_plan(OD_DIMS, OD_PERM)
        kernel = plan.kernel
        key = cg.artifact_key(
            kernel.layout.as_numpy_shape(),
            kernel.perm.numpy_axes(),
            kernel.elem_bytes,
        )
        desc = cg.search_nest(
            kernel.layout.as_numpy_shape(),
            kernel.perm.numpy_axes(),
            kernel.elem_bytes,
        )
        desc["codegen_version"] = cg.CODEGEN_VERSION + 1
        store.put_artifact(key, desc)
        cg.reset_codegen_stats()
        program = compile_executor(
            kernel, lowering=False, codegen=True, artifacts=store
        )
        assert program.kind == "nest"
        stats = cg.codegen_stats()
        assert stats["searches"] == 1  # stale artifact never applied
        assert stats["artifact_misses"] == 1
        # And the store now holds the fresh descriptor.
        assert store.artifact(key)["codegen_version"] == cg.CODEGEN_VERSION

    def test_artifacts_survive_reload_merge(self, tmp_path):
        a = PlanStore(tmp_path / "plans.json")
        a.put_artifact("k1", {"x": 1})
        b = PlanStore(tmp_path / "plans.json")
        b.put_artifact("k2", {"x": 2})
        a.reload()
        assert a.artifact("k2") == {"x": 2}
        assert a.artifact("k1") == {"x": 1}

    def test_pre_artifact_store_file_loads(self, tmp_path):
        """Files written before the codegen tier lack the artifacts
        section entirely; they must load clean."""
        path = tmp_path / "plans.json"
        path.write_text(json.dumps({"store_version": 1, "entries": {}}))
        store = PlanStore(path)
        assert store.artifact("anything") is None
        assert store.describe()["artifacts"] == 0
        assert not store.recovered_from_corruption


# ----------------------------------------------------------------------
# Scheduler routing
# ----------------------------------------------------------------------


class TestSchedulerRouting:
    def test_codegen_backend_runs_nest(self, tmp_path):
        store = PlanStore(tmp_path / "plans.json")
        tuner = ThroughputCalibrator(
            pool_size=2, backends=("thread", "codegen")
        )
        with StreamScheduler(
            num_streams=2, tuner=tuner, backend="codegen", store=store
        ) as sched:
            plan = make_plan(OD_DIMS, OD_PERM)
            src = np.random.default_rng(6).standard_normal(
                plan.layout.volume
            )
            ref = reference_transpose(src, plan.layout, plan.perm)
            report = sched.submit_partitioned(
                plan, src, lowering=False
            ).result()
            assert report.backend == "codegen"
            assert np.array_equal(report.output, ref)
            report.release()
            assert sched.metrics.snapshot()["counters"]["codegen_jobs"] == 1

    def test_codegen_batch_parity(self, tmp_path):
        with StreamScheduler(num_streams=2, backend="codegen") as sched:
            plan = make_plan(OD_DIMS, OD_PERM)
            srcs = [
                np.random.default_rng(7 + i).standard_normal(
                    plan.layout.volume
                )
                for i in range(3)
            ]
            refs = np.stack(
                [reference_transpose(s, plan.layout, plan.perm) for s in srcs]
            )
            report = sched.submit_batch(plan, srcs, lowering=False).result()
            assert report.backend == "codegen"
            assert np.array_equal(report.output, refs)
            report.release()

    def test_unprofitable_falls_back_to_thread_and_pins_cell(self):
        tuner = ThroughputCalibrator(
            pool_size=2, backends=("thread", "codegen")
        )
        with StreamScheduler(
            num_streams=2, tuner=tuner, backend="codegen"
        ) as sched:
            plan = make_plan((8, 128, 128, 2, 2, 2), (5, 4, 3, 2, 1, 0))
            src = np.random.default_rng(8).standard_normal(
                plan.layout.volume
            )
            ref = reference_transpose(src, plan.layout, plan.perm)
            report = sched.submit_partitioned(
                plan, src, lowering=False
            ).result()
            assert report.backend == "thread"
            assert np.array_equal(report.output, ref)
            report.release()
            counters = sched.metrics.snapshot()["counters"]
            assert counters["codegen_fallbacks"] == 1
            # The cell is pinned: auto routing never re-explores codegen.
            assert (
                tuner.choose_backend(
                    "indexed", src.nbytes, among=("thread", "codegen")
                )
                != "codegen"
            )

    def test_small_jobs_stay_on_threads(self):
        with StreamScheduler(num_streams=2, backend="codegen") as sched:
            plan = make_plan((16, 16, 16), (2, 1, 0))
            src = np.random.default_rng(9).standard_normal(
                plan.layout.volume
            )
            report = sched.submit_partitioned(
                plan, src, lowering=False
            ).result()
            assert report.backend == "thread"
            report.release()

    def test_tuner_records_under_codegen_backend(self, tmp_path):
        tuner = ThroughputCalibrator(
            pool_size=2, backends=("thread", "codegen")
        )
        with StreamScheduler(
            num_streams=2, tuner=tuner, backend="codegen"
        ) as sched:
            plan = make_plan(OD_DIMS, OD_PERM)
            src = np.random.default_rng(10).standard_normal(
                plan.layout.volume
            )
            sched.submit_partitioned(
                plan, src, lowering=False
            ).result().release()
            cells = tuner.table()["cells"]
            # Recorded under the codegen backend with the kind of the
            # program the nest replaced, so backend cells compare.
            assert any(k.startswith("codegen:indexed|") for k in cells)


# ----------------------------------------------------------------------
# Calibrator extensions
# ----------------------------------------------------------------------


class TestCalibrator:
    def test_mark_unavailable_persists(self, tmp_path):
        path = tmp_path / "autotune.json"
        t = ThroughputCalibrator(
            pool_size=2, path=path, backends=("thread", "codegen")
        )
        t.mark_unavailable("indexed", 1 << 22, "codegen")
        t.flush()
        t2 = ThroughputCalibrator(
            pool_size=2, path=path, backends=("thread", "codegen")
        )
        assert (
            t2.choose_backend("indexed", 1 << 22) != "codegen"
        )

    def test_choose_backend_among_restricts(self):
        t = ThroughputCalibrator(
            pool_size=2, backends=("thread", "process", "codegen")
        )
        # process would explore first in full order; among excludes it.
        assert t.choose_backend(
            "indexed", 1 << 22, among=("thread", "codegen")
        ) in ("thread", "codegen")

    def test_backend_wins_counts_calibrated_cells(self):
        t = ThroughputCalibrator(
            pool_size=1, backends=("thread", "codegen"), min_samples=1
        )
        nbytes = 1 << 22
        for p in t.candidates:
            t.record("indexed", nbytes, p, 1.0, backend="thread")
            t.record("indexed", nbytes, p, 0.25, backend="codegen")
        wins = t.backend_wins()
        assert wins == {"indexed": {"codegen": 1}}


# ----------------------------------------------------------------------
# Host cache probing
# ----------------------------------------------------------------------


class TestCacheProbe:
    def _sysfs(self, tmp_path, caches):
        """Build a fake cpu0 cache tree: [(type, level, size), ...]."""
        root = tmp_path / "cache"
        for i, (ctype, level, size) in enumerate(caches):
            d = root / f"index{i}"
            d.mkdir(parents=True)
            (d / "type").write_text(ctype + "\n")
            (d / "level").write_text(f"{level}\n")
            (d / "size").write_text(size + "\n")
        return str(root)

    def test_parse_cache_size(self):
        assert cg.parse_cache_size("48K") == 48 * 1024
        assert cg.parse_cache_size("2M") == 2 << 20
        assert cg.parse_cache_size("1G") == 1 << 30
        assert cg.parse_cache_size(" 512K\n") == 512 * 1024
        assert cg.parse_cache_size("768") == 768
        assert cg.parse_cache_size("") is None
        assert cg.parse_cache_size("banana") is None
        assert cg.parse_cache_size("0K") is None
        assert cg.parse_cache_size(None) is None

    def test_probe_prefers_largest_per_core_cache(self, tmp_path):
        root = self._sysfs(
            tmp_path,
            [
                ("Data", 1, "48K"),
                ("Instruction", 1, "32K"),
                ("Unified", 2, "2M"),
                ("Unified", 3, "105M"),  # shared LLC: excluded
            ],
        )
        assert cg.probe_cache_bytes(root) == 2 << 20

    def test_probe_skips_instruction_and_garbage(self, tmp_path):
        root = self._sysfs(
            tmp_path,
            [
                ("Instruction", 1, "32K"),
                ("Data", 1, "junk"),
                ("Data", 1, "64K"),
            ],
        )
        assert cg.probe_cache_bytes(root) == 64 * 1024

    def test_probe_missing_tree(self, tmp_path):
        assert cg.probe_cache_bytes(str(tmp_path / "nope")) is None

    def test_detect_env_override_wins(self, tmp_path):
        root = self._sysfs(tmp_path, [("Unified", 2, "2M")])
        assert (
            cg.detect_cache_budget(
                env={"REPRO_CODEGEN_CACHE_BYTES": "123456"}, root=root
            )
            == 123456
        )

    def test_detect_probed_three_quarters(self, tmp_path):
        root = self._sysfs(tmp_path, [("Unified", 2, "2M")])
        assert cg.detect_cache_budget(env={}, root=root) == (2 << 20) * 3 // 4

    def test_detect_fallback(self, tmp_path):
        assert (
            cg.detect_cache_budget(env={}, root=str(tmp_path / "nope"))
            == cg.DEFAULT_CACHE_BUDGET
        )

    def test_bad_env_override_falls_through(self, tmp_path):
        root = self._sysfs(tmp_path, [("Unified", 2, "2M")])
        assert (
            cg.detect_cache_budget(
                env={"REPRO_CODEGEN_CACHE_BYTES": "lots"}, root=root
            )
            == (2 << 20) * 3 // 4
        )

    def test_cost_functions_take_explicit_budget(self):
        """A bigger budget can only keep or lower the modelled cost
        (fewer refetches), and the explicit param bypasses the global."""
        in_shape, axes = (32, 32, 64, 128), (3, 2, 1, 0)
        out_shape = [in_shape[a] for a in axes]
        small = cg.nest_cost(in_shape, axes, out_shape, 8,
                             cache_budget=256 * 1024)
        large = cg.nest_cost(in_shape, axes, out_shape, 8,
                             cache_budget=64 << 20)
        assert large <= small

    def test_search_records_budget(self):
        desc = cg.search_nest(
            (32, 32, 64, 128), (3, 2, 1, 0), 8, cache_budget=512 * 1024
        )
        assert desc["cache_budget"] == 512 * 1024


# ----------------------------------------------------------------------
# Measured refinement
# ----------------------------------------------------------------------


class TestRefine:
    def test_top_k_candidates(self):
        desc = cg.search_nest((32, 32, 64, 128), (3, 2, 1, 0), 8, top_k=4)
        cands = desc["candidates"]
        assert 2 <= len(cands) <= 4
        # Winner first, ascending analytic cost, deduped.
        assert cands[0]["tiles"] == desc["tiles"]
        assert cands[0]["order"] == desc["order"]
        costs = [c["cost"] for c in cands]
        assert costs == sorted(costs)
        assert len({(tuple(c["tiles"]), tuple(c["order"])) for c in cands}) \
            == len(cands)
        json.dumps(desc)

    def test_top_k_one_has_no_candidates(self):
        desc = cg.search_nest((32, 32, 64, 128), (3, 2, 1, 0), 8)
        assert "candidates" not in desc

    def test_refine_passthrough_without_shortlist(self):
        desc = cg.search_nest((32, 32, 64, 128), (3, 2, 1, 0), 8)
        assert cg.refine_descriptor(desc) is desc

    def test_refine_passthrough_unprofitable(self):
        desc = cg.search_nest(
            (2, 2, 2, 128, 128, 8), (5, 4, 3, 2, 1, 0), 8, top_k=4
        )
        assert not desc["profitable"]
        assert cg.refine_descriptor(desc) is desc

    def test_refine_annotates_and_counts(self):
        desc = cg.search_nest(OD_DIMS, OD_PERM, 8, top_k=3)
        refined = cg.refine_descriptor(desc, reps=1)
        assert refined is not desc
        assert refined["refined"] is True
        probe = refined["probe"]
        assert probe["picked"] in range(len(desc["candidates"]))
        assert len(probe["measured_ms"]) == len(desc["candidates"])
        assert probe["probe_ms"] > 0
        picked = desc["candidates"][probe["picked"]]
        assert refined["tiles"] == list(picked["tiles"])
        assert refined["order"] == list(picked["order"])
        stats = cg.codegen_stats()
        assert stats["refinements"] == 1
        assert stats["probe_s"] > 0
        json.dumps(refined)

    def test_refine_hysteresis_keeps_analytic_on_close_calls(self, monkeypatch):
        """When every candidate measures identically, the analytic
        winner must keep the pick (index 0), never a noise flip."""
        desc = cg.search_nest(OD_DIMS, OD_PERM, 8, top_k=3)
        ticks = iter(range(10_000))
        monkeypatch.setattr(cg.time, "perf_counter", lambda: next(ticks) * 1.0)
        refined = cg.refine_descriptor(desc, reps=2)
        assert refined["probe"]["picked"] == 0
        assert cg.codegen_stats()["refine_switches"] == 0

    def test_refined_program_parity(self):
        desc = cg.search_nest(OD_DIMS, OD_PERM, 8, top_k=4)
        refined = cg.refine_descriptor(desc, reps=1)
        volume = int(np.prod(OD_DIMS))
        src = np.random.default_rng(0).standard_normal(volume)
        base = cg.NestProgram(
            {k: v for k, v in desc.items() if k != "candidates"}
        )
        probed = cg.NestProgram(
            {k: v for k, v in refined.items() if k != "probe"}
        )
        assert np.array_equal(probed.run(src), base.run(src))

    def test_artifact_hit_skips_probe(self, tmp_path):
        store = PlanStore(tmp_path / "plans.json")
        plan = make_plan(OD_DIMS, OD_PERM)
        program = compile_executor(
            plan.kernel, lowering=False, codegen=True, artifacts=store,
            refine=4,
        )
        assert program.kind == "nest"
        assert program.descriptor.get("refined") is True
        cold = cg.codegen_stats()
        assert cold["searches"] == 1
        assert cold["refinements"] == 1

        cg.reset_codegen_stats()
        from repro.kernels.executor import clear_exec_caches

        clear_exec_caches()
        warm_store = PlanStore(tmp_path / "plans.json")
        again = compile_executor(
            plan.kernel, lowering=False, codegen=True, artifacts=warm_store,
            refine=4,
        )
        assert again.kind == "nest"
        assert again.descriptor.get("refined") is True
        warm = cg.codegen_stats()
        assert warm["searches"] == 0
        assert warm["refinements"] == 0
        assert warm["artifact_hits"] == 1
        # Saved time credits the probe as well as the search.
        assert warm["search_s_saved"] > 0
        assert again.descriptor["tiles"] == program.descriptor["tiles"]

    def test_refine_zero_matches_plain_compile(self, tmp_path):
        """refine=0 (the default) must behave exactly as before."""
        store = PlanStore(tmp_path / "plans.json")
        plan = make_plan(OD_DIMS, OD_PERM)
        program = compile_executor(
            plan.kernel, lowering=False, codegen=True, artifacts=store
        )
        assert program.kind == "nest"
        assert "refined" not in program.descriptor
        assert cg.codegen_stats()["refinements"] == 0
