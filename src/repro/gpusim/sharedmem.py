"""Shared-memory bank-conflict analysis.

Shared memory on the simulated device is divided into
``DeviceSpec.shared_mem_banks`` banks of ``bank_bytes`` each.  A warp
access whose active lanes hit ``k`` distinct words in the same bank is
serialized into ``k`` cycles (``k - 1`` *extra* conflict cycles).  Lanes
reading the same word broadcast for free.

TTLG avoids conflicts by padding: a ``32 x 33`` tile buffer in the
Orthogonal-Distinct kernel, and an ``N0``-dependent pad in FVI-Match-Small
(Sec. IV, Alg. 6 discussion).  These functions let kernels verify their
padding analytically and let the detailed engine measure conflicts on
arbitrary access patterns.
"""

from __future__ import annotations

import numpy as np


def conflict_degree(
    word_addresses: np.ndarray, num_banks: int = 32
) -> int:
    """Serialization factor of one warp-level shared-memory access.

    Parameters
    ----------
    word_addresses:
        Word index (``byte_address // bank_bytes``) touched by each active
        lane.  Inactive lanes must be omitted.
    num_banks:
        Number of shared-memory banks.

    Returns
    -------
    int
        Number of cycles the access takes: 1 when conflict-free, up to the
        warp size in the fully serialized case.  Multiple lanes addressing
        the *same word* broadcast and count once.
    """
    if word_addresses.size == 0:
        return 0
    words = np.unique(np.asarray(word_addresses, dtype=np.int64))
    banks = words % num_banks
    _, counts = np.unique(banks, return_counts=True)
    return int(counts.max())


def conflict_degrees_rows(
    word_addresses: np.ndarray, num_banks: int = 32
) -> np.ndarray:
    """Row-wise :func:`conflict_degree` over a batch of warp accesses.

    ``word_addresses`` is a 2-D array where each row holds the word
    indices touched by one warp access (all lanes active).  Returns an
    ``int64`` array with one serialization factor per row, exactly equal
    to calling :func:`conflict_degree` on each row — duplicates within a
    row broadcast and count once — but in a handful of vectorized ops.
    The planner's pad search batches (pad x sampled-warp) accesses
    through this to avoid thousands of tiny ``np.unique`` calls.
    """
    words = np.asarray(word_addresses, dtype=np.int64)
    if words.ndim != 2:
        raise ValueError(f"word_addresses must be 2-D, got shape {words.shape}")
    n_rows, n_lanes = words.shape
    if n_rows == 0 or n_lanes == 0:
        return np.zeros(n_rows, dtype=np.int64)
    ordered = np.sort(words, axis=1)
    dup = np.zeros_like(ordered, dtype=bool)
    dup[:, 1:] = ordered[:, 1:] == ordered[:, :-1]
    banks = ordered % num_banks
    flat = np.arange(n_rows, dtype=np.int64)[:, None] * num_banks + banks
    counts = np.bincount(
        flat[~dup], minlength=n_rows * num_banks
    ).reshape(n_rows, num_banks)
    return counts.max(axis=1)


def extra_conflict_cycles(word_addresses: np.ndarray, num_banks: int = 32) -> int:
    """Conflict cycles beyond the conflict-free single cycle."""
    degree = conflict_degree(word_addresses, num_banks)
    return max(0, degree - 1)


def column_access_degree(
    num_rows: int, row_pitch_words: int, num_banks: int = 32
) -> int:
    """Conflict degree of a warp reading one element from each of
    ``num_rows`` consecutive rows of a 2D buffer (a "column" access).

    This is the canonical transpose read pattern: lane ``r`` reads word
    ``r * row_pitch_words + c``.  With ``row_pitch_words`` sharing a large
    factor with ``num_banks`` the column collapses onto few banks; a pitch
    of 33 words (the 32x33 padded tile) is conflict-free.
    """
    if num_rows <= 0:
        return 0
    lanes = np.arange(num_rows, dtype=np.int64) * row_pitch_words
    return conflict_degree(lanes, num_banks)


def conflict_free_pad(
    n0: int, row_words: int = 0, num_banks: int = 32
) -> int:
    """Pad (in words) for the FVI-Match-Small buffer (Alg. 6, Fig. 4).

    The ``b x b x N0`` buffer is viewed as ``b`` rows of ``row_words =
    b * N0`` words plus the pad.  The write-out phase has lane ``l`` of a
    warp read vertically stacked "pencils": lane ``l`` touches word
    ``(l // n0) * (row_words + pad) + (l % n0)``.  The paper's rule —
    choose ``pad`` so the first word of row 1 maps to bank ``N0`` —
    staggers successive rows by exactly one pencil, conflict-free
    whenever ``n0`` divides ``num_banks``; for other extents the search
    below returns the least-conflicting pad.
    """
    if n0 <= 0:
        raise ValueError(f"n0 must be positive, got {n0}")
    if row_words <= 0:
        row_words = n0
    best_pad, best_degree = 0, num_banks + 1
    for pad in range(num_banks):
        pitch = row_words + pad
        # Evaluate one warp's worth of vertically stacked pencils.
        lanes = np.arange(num_banks, dtype=np.int64)
        words = (lanes // n0) * pitch + (lanes % n0)
        degree = conflict_degree(words, num_banks)
        if degree < best_degree:
            best_degree, best_pad = degree, pad
        if degree == 1:
            break
    return best_pad


def padded_tile_pitch(tile: int = 32, pad: int = 1) -> int:
    """Row pitch in words of the padded Orthogonal-Distinct tile buffer."""
    return tile + pad
