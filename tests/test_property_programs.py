"""Property-based bit-exactness for every executor program kind.

For random (dims, perm, dtype) problems — bounded volume, derandomized
so CI is reproducible — every way the repository can execute a
transposition must agree bit-for-bit with the plain ``np.transpose``
reference: the lowered view/region route, the forced index-map route,
the chunked route, the codegen compile route, and a directly generated
:class:`~repro.kernels.codegen.NestProgram` (built from the search
descriptor regardless of the profitability verdict, so the generated
nest is exercised on arbitrary small geometries, not just the large
cases where it is actually deployed).  Each program is checked on
``run``, ``run(out=)``, ``run_batch``, and the ``partition`` /
``run_part`` path the scheduler uses.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.permutation import Permutation
from repro.core.plan import make_plan
from repro.kernels import native
from repro.kernels.codegen import NestProgram, codegen_stats, search_nest
from repro.kernels.executor import compile_executor

DTYPES = (np.float64, np.float32, np.int64, np.int32, np.complex128)

#: Keep every drawn problem comfortably small: the point is coverage of
#: geometry/kind combinations, not throughput.
MAX_VOLUME = 4096


@st.composite
def problems(draw):
    rank = draw(st.integers(1, 5))
    dims = []
    volume = 1
    for _ in range(rank):
        extent = draw(st.integers(1, max(1, MAX_VOLUME // volume)))
        dims.append(extent)
        volume *= extent
    perm = tuple(draw(st.permutations(range(rank))))
    dtype = draw(st.sampled_from(DTYPES))
    return tuple(dims), perm, dtype


def _source(volume, dtype, seed=11):
    rng = np.random.default_rng(seed)
    if np.issubdtype(dtype, np.complexfloating):
        return (
            rng.standard_normal(volume) + 1j * rng.standard_normal(volume)
        ).astype(dtype)
    if np.issubdtype(dtype, np.integer):
        return rng.integers(-(1 << 30), 1 << 30, volume).astype(dtype)
    return rng.standard_normal(volume).astype(dtype)


def _np_reference(src, dims, perm):
    """The independent oracle: reshape, np.transpose, ravel."""
    axes = Permutation(perm).numpy_axes()
    return np.ascontiguousarray(
        np.transpose(src.reshape(dims[::-1]), axes)
    ).ravel()


def _check_all_surfaces(program, src, ref, dims, perm):
    assert np.array_equal(program.run(src), ref)
    out = np.empty_like(src)
    assert program.run(src, out=out) is out
    assert np.array_equal(out, ref)

    srcs = np.stack([src, np.roll(src, 1), src[::-1].copy()])
    refs = np.stack([_np_reference(s, dims, perm) for s in srcs])
    assert np.array_equal(program.run_batch(srcs), refs)

    out = np.empty_like(src)
    tasks = program.partition(3)
    assert tasks, "partition returned no tasks"
    for task in tasks:
        program.run_part(src, out, task)
    assert np.array_equal(out, ref)


@given(problems())
@settings(max_examples=60, deadline=None, derandomize=True)
def test_compiled_programs_match_numpy(problem):
    """Every compile route agrees with np.transpose on every surface."""
    dims, perm, dtype = problem
    # Kernels model elem_bytes as 4 or 8; wider dtypes (complex128)
    # still execute correctly — the cost model just prices f64 lines.
    eb = 4 if np.dtype(dtype).itemsize == 4 else 8
    plan = make_plan(dims, perm, elem_bytes=eb)
    src = _source(plan.layout.volume, dtype)
    ref = _np_reference(src, dims, perm)

    routes = (
        {},  # lowered: view or region
        {"lowering": False},  # indexed
        {"lowering": False, "max_index_bytes": 64},  # chunked for most
        {"lowering": False, "codegen": True},  # nest or its fallback
    )
    kinds = set()
    for opts in routes:
        program = compile_executor(plan.kernel, **opts)
        kinds.add(program.kind)
        _check_all_surfaces(program, src, ref, dims, perm)
    # The distinct routes really produced distinct machinery.  A fused
    # identity (or near-trivial volume) legitimately collapses to the
    # view program on every route.
    assert len(kinds) >= 2 or kinds == {"view"} or plan.layout.volume <= 2


@given(problems())
@settings(max_examples=40, deadline=None, derandomize=True)
def test_generated_nest_matches_numpy(problem):
    """The generated loop nest is bit-exact on arbitrary geometry, not
    just where the model deploys it: build the program straight from
    the search descriptor, ignoring the profitability verdict."""
    dims, perm, dtype = problem
    in_shape = dims[::-1]
    axes = Permutation(perm).numpy_axes()
    desc = search_nest(in_shape, axes, np.dtype(dtype).itemsize)
    program = NestProgram(desc)
    src = _source(program.volume, dtype, seed=13)
    ref = _np_reference(src, dims, perm)
    _check_all_surfaces(program, src, ref, dims, perm)


@given(problems())
@settings(max_examples=30, deadline=None, derandomize=True)
def test_search_is_deterministic(problem):
    dims, perm, dtype = problem
    in_shape = dims[::-1]
    axes = Permutation(perm).numpy_axes()
    eb = np.dtype(dtype).itemsize
    a, b = search_nest(in_shape, axes, eb), search_nest(in_shape, axes, eb)
    a.pop("search_ms"), b.pop("search_ms")
    assert a == b


# ----------------------------------------------------------------------
# Native (C) backend: parity sweep + forced-failure fallback chains
# ----------------------------------------------------------------------

_FALLBACK_DIMS, _FALLBACK_PERM = (4, 3, 8), (2, 1, 0)


def _nest_desc(dims, perm, dtype=np.float64):
    in_shape = dims[::-1]
    axes = Permutation(perm).numpy_axes()
    return search_nest(in_shape, axes, np.dtype(dtype).itemsize)


def _check_fallback_program(program, dtype=np.float64, seed=19):
    """The fallback chain must stay bit-exact on every surface."""
    src = _source(program.volume, dtype, seed=seed)
    ref = _np_reference(src, _FALLBACK_DIMS, _FALLBACK_PERM)
    _check_all_surfaces(program, src, ref, _FALLBACK_DIMS, _FALLBACK_PERM)


@given(problems())
@settings(max_examples=25, deadline=None, derandomize=True)
def test_native_backend_matches_numpy(problem):
    """Random geometry through the C backend: every surface bit-exact.

    With a toolchain present the attach is asserted, so the sweep
    really exercises the emitted C (memcpy path, blocked micro-kernel,
    16-byte struct elements) and not a silent Python fallback; without
    one (the CI ``CC=/bin/false`` leg) the same sweep covers the
    fallback chain.
    """
    dims, perm, dtype = problem
    desc = _nest_desc(dims, perm, dtype)
    program = NestProgram(desc)
    if (
        native.toolchain() is not None
        and np.dtype(dtype).itemsize in native.SUPPORTED_ELEM_BYTES
    ):
        assert program.descriptor["backend"] == "c"
    src = _source(program.volume, dtype, seed=17)
    ref = _np_reference(src, dims, perm)
    _check_all_surfaces(program, src, ref, dims, perm)


def test_missing_toolchain_falls_back(monkeypatch):
    """``CC=/bin/false`` disables the tier: counted, chain bit-exact."""
    monkeypatch.setenv("REPRO_CC", "/bin/false")
    native.reset_toolchain_cache()
    try:
        assert native.toolchain() is None
        before = codegen_stats()["native_toolchain_missing"]
        program = NestProgram(_nest_desc(_FALLBACK_DIMS, _FALLBACK_PERM))
        assert program.descriptor["backend"] != "c"
        after = codegen_stats()["native_toolchain_missing"]
        assert after == before + 1
        _check_fallback_program(program)
    finally:
        monkeypatch.undo()
        native.reset_toolchain_cache()


def test_compile_error_falls_back(monkeypatch):
    """A source the toolchain rejects: counted, chain bit-exact."""
    if native.toolchain() is None:
        pytest.skip("no C toolchain on this host")
    monkeypatch.setattr(
        native, "native_source", lambda *a, **k: "this is not C\n"
    )
    before = codegen_stats()["native_compile_failures"]
    program = NestProgram(_nest_desc(_FALLBACK_DIMS, _FALLBACK_PERM))
    assert program.descriptor["backend"] != "c"
    assert codegen_stats()["native_compile_failures"] == before + 1
    _check_fallback_program(program)


def test_load_error_falls_back(monkeypatch, tmp_path):
    """An object dlopen rejects: counted, chain bit-exact."""
    if native.toolchain() is None:
        pytest.skip("no C toolchain on this host")
    bogus = tmp_path / "bogus.so"
    bogus.write_bytes(b"this is not a shared object")
    monkeypatch.setattr(native, "ensure_compiled", lambda *a, **k: bogus)
    before = codegen_stats()["native_load_failures"]
    program = NestProgram(_nest_desc(_FALLBACK_DIMS, _FALLBACK_PERM))
    assert program.descriptor["backend"] != "c"
    assert codegen_stats()["native_load_failures"] == before + 1
    _check_fallback_program(program)


def test_concurrent_compiles_converge(tmp_path):
    """Threads racing to compile one source produce exactly one object
    and zero failures (the serve workload builds the same program from
    several client threads at once)."""
    if native.toolchain() is None:
        pytest.skip("no C toolchain on this host")
    desc = _nest_desc(_FALLBACK_DIMS, _FALLBACK_PERM)
    src = native.native_source(
        desc["in_shape"],
        desc["axes"],
        desc["tiles"],
        desc["order"],
        desc["elem_bytes"],
    )
    tc = native.toolchain()
    before = codegen_stats()
    results, errors = [], []

    def build():
        try:
            results.append(native.ensure_compiled(src, tmp_path, tc))
        except Exception as exc:  # the assertion target: no error escapes
            errors.append(exc)

    threads = [threading.Thread(target=build) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(set(results)) == 1 and results[0].is_file()
    after = codegen_stats()
    assert after["native_compiled"] == before["native_compiled"] + 1
    assert after["native_compile_failures"] == before["native_compile_failures"]


def test_call_failure_drops_to_python_permanently():
    """A faulting foreign call demotes the program, bit-exactly."""
    if native.toolchain() is None:
        pytest.skip("no C toolchain on this host")
    program = NestProgram(_nest_desc(_FALLBACK_DIMS, _FALLBACK_PERM))
    assert program.descriptor["backend"] == "c"

    def boom(*args):
        raise OSError("injected native fault")

    before = codegen_stats()["native_call_failures"]
    program._native = boom
    program._native_batch = boom
    _check_fallback_program(program)
    assert program.descriptor["backend"] != "c"
    assert program._native is None and program._native_batch is None
    assert codegen_stats()["native_call_failures"] == before + 1
