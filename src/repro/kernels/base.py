"""Abstract base class for transposition kernels.

Every kernel binds a (fused) transposition problem to one data-movement
schema with concrete parameters, and provides three views of itself:

- :meth:`execute` — functional data movement with NumPy, element-exact
  against the reference transposition (used by the public API and tests);
- :meth:`counters` — fast analytic activity counts (Table I of the paper
  with partial-tile corrections), consumed by the cost model;
- :meth:`trace` — optional per-warp access trace for the detailed engine
  (validation of the analytic counts on small tensors).
"""

from __future__ import annotations

import abc
from typing import Dict, Iterator, Optional

import numpy as np

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.taxonomy import Schema
from repro.errors import SchemaError
from repro.gpusim.counters import KernelCounters, LaunchGeometry
from repro.gpusim.cost import CostModel
from repro.gpusim.engine import WarpAccess
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec


class TransposeKernel(abc.ABC):
    """One schema bound to one problem with concrete parameters."""

    #: Schema implemented by the subclass.
    schema: Schema

    def __init__(
        self,
        layout: TensorLayout,
        perm: Permutation,
        elem_bytes: int = 8,
        spec: DeviceSpec = KEPLER_K40C,
    ):
        if perm.rank != layout.rank:
            raise SchemaError(
                f"permutation rank {perm.rank} != layout rank {layout.rank}"
            )
        if elem_bytes not in (4, 8):
            raise SchemaError(f"elem_bytes must be 4 or 8, got {elem_bytes}")
        self.layout = layout
        self.perm = perm
        self.elem_bytes = elem_bytes
        self.spec = spec
        self.out_layout = layout.permuted(perm)

    # ------------------------------------------------------------------
    @property
    def volume(self) -> int:
        return self.layout.volume

    @property
    @abc.abstractmethod
    def launch_geometry(self) -> LaunchGeometry:
        """Grid/block shape of the kernel launch."""

    @abc.abstractmethod
    def counters(self) -> KernelCounters:
        """Analytic activity counters for the full launch."""

    @abc.abstractmethod
    def execute(self, src: np.ndarray) -> np.ndarray:
        """Move data: 1-D linearized input -> 1-D linearized output.

        ``src`` must have ``self.volume`` elements; the result is a new
        array in the output layout's linearization.
        """

    def trace(self, max_blocks: Optional[int] = None) -> Iterator[WarpAccess]:
        """Per-warp access trace (detailed engine input).

        Subclasses that support detailed validation override this;
        the default raises ``NotImplementedError``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not provide a detailed trace"
        )

    def tex_array_bytes(self) -> int:
        """Total bytes of texture-mapped offset arrays (0 if none)."""
        return 0

    def features(self) -> Dict[str, float]:
        """Raw feature values for the performance model (Sec. V)."""
        geom = self.launch_geometry
        return {
            "volume": float(self.volume),
            "num_blocks": float(geom.num_blocks),
            "num_threads": float(geom.total_threads),
        }

    # ------------------------------------------------------------------
    def simulated_time(
        self, cost_model: Optional[CostModel] = None, jitter_key=None
    ) -> float:
        """Simulated execution time of one launch, in seconds."""
        cm = cost_model if cost_model is not None else CostModel(self.spec)
        return cm.kernel_time(self.counters(), self.launch_geometry, jitter_key)

    def check_input(self, src: np.ndarray) -> np.ndarray:
        """Validate and flatten the input array for :meth:`execute`."""
        arr = np.ascontiguousarray(src).reshape(-1)
        if arr.size != self.volume:
            raise SchemaError(
                f"input has {arr.size} elements, layout volume is {self.volume}"
            )
        return arr

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(dims={self.layout.dims}, "
            f"perm={self.perm.mapping})"
        )
