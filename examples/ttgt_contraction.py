"""TTGT tensor contraction driven by the TTLG performance model.

The paper's headline use case for the queryable model: a tensor
contraction C = A x B implemented as
Transpose-Transpose-GEMM-Transpose, where the *layout* fed to the GEMM
is chosen by comparing predicted transposition times.

This example contracts a CCSD-like two-electron term
``t[a,c,i,j] * f[b,c] -> r[a,b,i,j]`` (virtual indices a,b,c; occupied
i,j), shows the planner's chosen layouts and cost breakdown, and
verifies the result against np.einsum.

Run:  python examples/ttgt_contraction.py
"""

import numpy as np

from repro.ttgt import contract, parse_contraction, plan_contraction


def main() -> None:
    # Modest extents so the example runs instantly; the planner logic is
    # identical at computational-chemistry scale.
    extents = dict(a=24, b=24, c=24, i=12, j=12)
    expr = "acij,bc->abij"
    spec = parse_contraction(expr, extents)
    print(f"contraction {expr}")
    print(f"  M (rows)      : {spec.m_labels} -> {spec.volume(spec.m_labels)}")
    print(f"  N (cols)      : {spec.n_labels} -> {spec.volume(spec.n_labels)}")
    print(f"  K (contracted): {spec.k_labels} -> {spec.volume(spec.k_labels)}")
    print(f"  GEMM flops    : {spec.flops:,}")

    plan = plan_contraction(expr, extents)
    print("\nchosen TTGT strategy (model-driven):")
    print(" ", plan.describe())

    rng = np.random.default_rng(42)
    A = rng.standard_normal(spec.volume(spec.a_labels))
    B = rng.standard_normal(spec.volume(spec.b_labels))
    C = contract(expr, A, B, extents, plan=plan)

    # Verify against einsum (labels reversed: NumPy's last axis is our
    # fastest dimension).
    An = A.reshape([extents[l] for l in reversed(spec.a_labels)])
    Bn = B.reshape([extents[l] for l in reversed(spec.b_labels)])
    ref = np.einsum("jica,cb->jiba", An, Bn).reshape(-1)
    err = float(np.abs(C - ref).max())
    print(f"\nmax |TTGT - einsum| = {err:.2e}")
    assert err < 1e-10

    # Show why the model matters: compare the chosen strategy against
    # the naive one that ignores transposition costs entirely.
    from repro.ttgt.contraction import TTGTPlan, _transpose_cost
    from repro.gpusim.spec import KEPLER_K40C

    naive_a = spec.m_labels + spec.k_labels
    naive_b = spec.k_labels + spec.n_labels
    naive_total = (
        _transpose_cost(spec.a_labels, naive_a, spec.extents, KEPLER_K40C)
        + _transpose_cost(spec.b_labels, naive_b, spec.extents, KEPLER_K40C)
        + plan.gemm_time
        + _transpose_cost(
            spec.m_labels + spec.n_labels, spec.c_labels, spec.extents,
            KEPLER_K40C,
        )
    )
    print(
        f"model-chosen total {plan.total_time * 1e6:.1f} us vs "
        f"fixed-layout total {naive_total * 1e6:.1f} us "
        f"({naive_total / plan.total_time:.2f}x)"
    )


if __name__ == "__main__":
    main()
