"""Unit tests for the coalescing model (repro.gpusim.transactions)."""

import numpy as np
import pytest

from repro.gpusim.transactions import (
    average_row_transactions,
    contiguous_run_transactions,
    run_transactions_over_strided_rows,
    warp_transactions,
)


class TestWarpTransactions:
    def test_fully_coalesced_floats(self):
        """32 floats from an aligned base: one 128 B transaction."""
        addrs = np.arange(32) * 4
        assert warp_transactions(addrs, 4) == 1

    def test_fully_coalesced_doubles(self):
        """32 doubles = 256 B: two transactions."""
        addrs = np.arange(32) * 8
        assert warp_transactions(addrs, 8) == 2

    def test_misaligned_run_adds_one(self):
        addrs = 4 + np.arange(32) * 4  # crosses one extra boundary
        assert warp_transactions(addrs, 4) == 2

    def test_strided_worst_case(self):
        """Stride >= 128 B: every lane its own transaction."""
        addrs = np.arange(32) * 128
        assert warp_transactions(addrs, 4) == 32

    def test_same_address_broadcast(self):
        addrs = np.zeros(32, dtype=np.int64)
        assert warp_transactions(addrs, 4) == 1

    def test_empty(self):
        assert warp_transactions(np.array([]), 4) == 0

    def test_element_straddles_boundary(self):
        """A double at byte 124 touches two lines."""
        assert warp_transactions(np.array([124]), 8) == 2


class TestContiguousRun:
    def test_aligned_exact(self):
        assert contiguous_run_transactions(0, 32, 4) == 1
        assert contiguous_run_transactions(0, 32, 8) == 2
        assert contiguous_run_transactions(0, 16, 8) == 1

    def test_partial_counts_whole(self):
        assert contiguous_run_transactions(0, 1, 4) == 1

    def test_unaligned_start(self):
        assert contiguous_run_transactions(120, 4, 8) == 2

    def test_zero_elements(self):
        assert contiguous_run_transactions(0, 0, 8) == 0

    def test_negative_start_raises(self):
        with pytest.raises(ValueError):
            contiguous_run_transactions(-8, 4, 8)

    def test_matches_warp_transactions(self):
        for start in (0, 8, 60, 120):
            for n in (1, 5, 16, 32):
                addrs = start + np.arange(n) * 8
                assert contiguous_run_transactions(start, n, 8) == (
                    warp_transactions(addrs, 8)
                )


class TestStridedRows:
    def test_matches_bruteforce(self):
        for stride in (16, 24, 48, 128):
            got = run_transactions_over_strided_rows(
                num_rows=50, row_elems=10, row_stride_elems=stride,
                base_byte=0, elem_bytes=8,
            )
            want = sum(
                contiguous_run_transactions(r * stride * 8, 10, 8)
                for r in range(50)
            )
            assert got == want

    def test_zero_rows(self):
        assert run_transactions_over_strided_rows(0, 10, 16, 0, 8) == 0

    def test_zero_stride_single_footprint(self):
        got = run_transactions_over_strided_rows(100, 16, 0, 0, 8)
        assert got == contiguous_run_transactions(0, 16, 8)


class TestAverageRow:
    def test_aligned_case_exact(self):
        """16 doubles = 128 B: always exactly one line when the lattice
        includes 128-byte alignment... the average over 8-byte phases is
        higher because off-phase starts straddle."""
        avg = average_row_transactions(16, 8)
        assert 1.0 < avg < 2.0

    def test_full_line_multiple(self):
        # Expectation is exactly 1 + (phases-1)/phases extra boundary.
        avg = average_row_transactions(32, 4)
        assert avg == pytest.approx(1 + 31 / 32)

    def test_zero(self):
        assert average_row_transactions(0, 8) == 0.0
