"""Native execution tier: C-emitted transpose kernels.

The codegen tier (:mod:`repro.kernels.codegen`) searches HPTT-style
block/loop-order configurations but lowers the winner to
``exec``-compiled Python slice nests, so every tile still pays one
interpreter dispatch and NumPy's strided-copy setup.  HPTT and TTC
show the same search pays off several-fold more when the winning nest
is emitted as *compiled C* with a contiguous-innermost micro-kernel.
This module is that lowering:

1. **Emission** (:func:`native_source`) — the searched descriptor
   (shape, axes, tiles, loop order, element width) is emitted as a
   self-contained C translation unit: the tile loops and element loops
   with every extent, block size, and stride baked in as constants,
   an innermost micro-kernel that is a ``memcpy`` when the transpose
   preserves the innermost axis and a cache-blocked 2-D transpose on
   the (input-fastest, output-fastest) plane otherwise, and a fused
   batch entry point striding whole operands.
2. **Toolchain** (:func:`detect_toolchain`) — the host C compiler is
   detected once per process, like
   :func:`~repro.kernels.codegen.detect_cache_budget` detects the
   cache budget: ``REPRO_CC``/``CC`` win verbatim when set (and are
   *not* second-guessed — ``CC=/bin/false`` deliberately disables the
   tier), otherwise ``cc``/``gcc``/``clang`` are probed on ``PATH``.
   The compiler's ``--version`` line is hashed into a fingerprint that
   keys the object cache, so a toolchain upgrade recompiles instead of
   reusing stale objects.
3. **Object cache** (:func:`ensure_compiled`) — sources compile
   out-of-band (``cc -O3 -shared -fPIC`` via subprocess) into a
   directory that lives next to the runtime's ``PlanStore``, named by
   source hash + compiler fingerprint.  An existing ``.so`` is a cache
   hit: warm restarts — and process-pool workers rehydrating programs
   by content key against the same store — run **zero compiles**.
4. **Loading** (:func:`native_kernel`) — the shared object is loaded
   through :mod:`ctypes`; foreign calls through ``CDLL`` release the
   GIL for the **whole call**, not per tile, so native nest partition
   tasks scale on the thread pool with zero interpreter work inside.

Every failure mode — no toolchain, unsupported element width,
compile error, ``dlopen`` error — returns ``None`` and the caller
(:class:`~repro.kernels.codegen.NestProgram`) keeps the numba/python
chain, bit-exactly.  Counters are reported through a hook installed
by :mod:`repro.kernels.codegen` so all codegen statistics share one
lock (see ``codegen_stats``).
"""

from __future__ import annotations

import ctypes
import hashlib
import math
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from threading import Lock
from typing import Dict, List, Optional, Sequence, Tuple

#: Bumped when the emitted C changes shape: old shared objects are
#: never reused against sources they no longer match.
NATIVE_VERSION = 2

#: Element widths the emitter knows a C type for.  Anything else
#: (exotic void dtypes) declines and keeps the Python backend.
SUPPORTED_ELEM_BYTES = (1, 2, 4, 8, 16)

_C_TYPES = {1: "uint8_t", 2: "uint16_t", 4: "uint32_t", 8: "uint64_t"}

#: Compilers probed on PATH when no env override names one.
_CC_CANDIDATES = ("cc", "gcc", "clang")

#: Compile line; kept flag-stable so the source hash + compiler
#: fingerprint fully determine the object.
CFLAGS = ("-O3", "-shared", "-fPIC")

#: Seconds one out-of-band compile may take before it is declared
#: failed (a wedged compiler must not hang the serving path).
COMPILE_TIMEOUT_S = 60.0

#: One tile's (read, write) plane span below which the micro-kernel
#: keeps plain loops: the strided side stays cache-resident anyway, and
#: unblocked runs vectorize better than short blocked trip counts.
_RESIDENT_PLANE_BYTES = 32 * 1024


class NativeCompileError(RuntimeError):
    """The host toolchain rejected an emitted source."""


# ----------------------------------------------------------------------
# Counter hook (installed by repro.kernels.codegen so every codegen
# counter lives in one dict under one lock)
# ----------------------------------------------------------------------


def _noop_count(name: str, value=1) -> None:  # pragma: no cover - default
    return None


_COUNT = _noop_count


def set_counter(fn) -> None:
    """Route this module's counters through ``fn(name, value=1)``."""
    global _COUNT
    _COUNT = fn


# ----------------------------------------------------------------------
# Toolchain detection (resolved once, like detect_cache_budget)
# ----------------------------------------------------------------------

_UNRESOLVED = object()
_TOOLCHAIN = _UNRESOLVED
_TOOLCHAIN_LOCK = Lock()


def detect_toolchain(env=None) -> Optional[dict]:
    """Probe the host C compiler, or ``None`` when there isn't one.

    ``REPRO_CC`` (then ``CC``) wins verbatim when set and is the *only*
    candidate tried — an explicit ``CC=/bin/false`` must disable the
    tier, not silently fall through to a system ``cc``.  Otherwise
    ``cc``/``gcc``/``clang`` are probed on ``PATH``.  A candidate
    counts only if ``--version`` runs and exits 0; its first output
    line becomes the version string and, hashed with the resolved
    path, the object-cache ``fingerprint``.
    """
    env = os.environ if env is None else env
    override = env.get("REPRO_CC") or env.get("CC")
    names = [override] if override else list(_CC_CANDIDATES)
    for name in names:
        if not name:
            continue
        path = name if os.path.sep in name else shutil.which(name)
        if not path or not os.path.isfile(path):
            continue
        try:
            proc = subprocess.run(
                [path, "--version"],
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                timeout=10,
            )
        except (OSError, subprocess.SubprocessError):
            continue
        if proc.returncode != 0:
            continue
        version = proc.stdout.decode(errors="replace").splitlines()
        version = version[0].strip() if version else ""
        fingerprint = hashlib.sha1(
            (path + "\x00" + version + "\x00" + " ".join(CFLAGS)).encode()
        ).hexdigest()[:12]
        return {"path": path, "version": version, "fingerprint": fingerprint}
    return None


def toolchain() -> Optional[dict]:
    """The process-wide detected toolchain (probed once, then cached)."""
    global _TOOLCHAIN
    if _TOOLCHAIN is _UNRESOLVED:
        with _TOOLCHAIN_LOCK:
            if _TOOLCHAIN is _UNRESOLVED:
                _TOOLCHAIN = detect_toolchain()
    return _TOOLCHAIN  # type: ignore[return-value]


def reset_toolchain_cache() -> None:
    """Forget the cached probe (tests that monkeypatch ``CC``)."""
    global _TOOLCHAIN
    with _TOOLCHAIN_LOCK:
        _TOOLCHAIN = _UNRESOLVED


def compiler_info() -> dict:
    """Toolchain summary for stats tables and benchmark env stamps."""
    tc = toolchain()
    if tc is None:
        return {"available": False, "path": None, "version": None,
                "fingerprint": None}
    return {"available": True, **tc}


# ----------------------------------------------------------------------
# Object cache directory
# ----------------------------------------------------------------------

_DEFAULT_DIR: Optional[Path] = None
_DEFAULT_DIR_LOCK = Lock()


def set_default_cache_dir(path) -> None:
    """Pin the process default object-cache directory.

    The scheduler's process-pool workers call this at startup with the
    directory derived from their plan-store path, so even programs that
    arrive by pickle (no store attached) reuse the parent's compiled
    objects instead of recompiling into a private tempdir.
    """
    global _DEFAULT_DIR
    with _DEFAULT_DIR_LOCK:
        _DEFAULT_DIR = Path(path) if path is not None else None


def default_cache_dir() -> Path:
    """The object-cache directory used when the caller pins none.

    ``REPRO_NATIVE_CACHE_DIR`` wins; else the directory pinned by
    :func:`set_default_cache_dir`; else a per-process tempdir (still
    correct — just no cross-restart reuse).
    """
    override = os.environ.get("REPRO_NATIVE_CACHE_DIR")
    if override:
        return Path(override)
    global _DEFAULT_DIR
    with _DEFAULT_DIR_LOCK:
        if _DEFAULT_DIR is None:
            _DEFAULT_DIR = Path(tempfile.mkdtemp(prefix="repro-native-"))
        return _DEFAULT_DIR


# ----------------------------------------------------------------------
# C source emission
# ----------------------------------------------------------------------


def _strides_of(shape: Sequence[int]) -> List[int]:
    strides = [0] * len(shape)
    s = 1
    for a in range(len(shape) - 1, -1, -1):
        strides[a] = s
        s *= int(shape[a])
    return strides


def native_source(
    in_shape: Sequence[int],
    axes: Sequence[int],
    tiles: Sequence[int],
    order: Sequence[int],
    elem_bytes: int,
) -> str:
    """The C translation unit for one searched nest configuration.

    Exports two entry points (default visibility, loaded by ctypes)::

        void repro_nest(const void *src, void *dst,
                        int64_t lo, int64_t hi);
        void repro_nest_batch(const void *src, void *dst,
                              int64_t nbatch, int64_t lo, int64_t hi);

    ``src`` is the flat C-contiguous input, ``dst`` the flat output;
    ``lo:hi`` bounds output axis 0 (the partition axis), so the same
    object serves ``run``, ``run_part``, and — via the batch entry,
    which strides whole ``volume``-element operands — ``run_batch``.
    The tile loops and loop order mirror the Python nest exactly;
    inside a tile, element loops cover the remaining output axes and
    the innermost work is a single ``memcpy`` when the transpose
    preserves the input's fastest axis (both sides contiguous), or a
    cache-blocked 2-D transpose on the (input-fastest, output-fastest)
    axis plane otherwise — contiguous reads along one block edge,
    contiguous writes along the other, with both blocks' cache lines
    reused instead of streamed.
    """
    nd = len(in_shape)
    if nd == 0:
        raise ValueError("cannot emit a rank-0 nest")
    eb = int(elem_bytes)
    out_shape = [int(in_shape[a]) for a in axes]
    tiles = [min(int(t), e) for t, e in zip(tiles, out_shape)]
    src_strides = _strides_of(in_shape)
    out_strides = _strides_of(out_shape)
    moved = [src_strides[axes[k]] for k in range(nd)]
    volume = math.prod(int(d) for d in in_shape)

    lines = [
        "#include <stdint.h>",
        "#include <string.h>",
        "",
    ]
    if eb == 16:
        lines.append("typedef struct { uint64_t w0, w1; } elem_t;")
    else:
        lines.append(f"typedef {_C_TYPES[eb]} elem_t;")
    lines += [
        "",
        "static void nest_rows(const elem_t * restrict src,"
        " elem_t * restrict dst, int64_t lo, int64_t hi) {",
    ]

    pad = "    "
    depth = 1
    closes = 0
    bounds: Dict[int, Tuple[str, str]] = {}
    looped = [a for a in order if a == 0 or tiles[a] < out_shape[a]]
    if 0 not in looped:
        looped = [0] + looped
    for a in looped:
        start, stop = ("lo", "hi") if a == 0 else ("0", str(out_shape[a]))
        lines.append(
            f"{pad * depth}for (int64_t i{a} = {start}; i{a} < {stop};"
            f" i{a} += {tiles[a]}) {{"
        )
        depth += 1
        closes += 1
        lines.append(
            f"{pad * depth}int64_t u{a} = i{a} + {tiles[a]} < {stop}"
            f" ? i{a} + {tiles[a]} : {stop};"
        )
        bounds[a] = (f"i{a}", f"u{a}")
    if 0 not in bounds:
        bounds[0] = ("lo", "hi")

    n1 = nd - 1
    m1 = moved[n1]
    # Position (in output axes) of the input's fastest axis: the one
    # output axis whose reads are contiguous.  When it IS the innermost
    # output axis, both sides of the innermost run are contiguous.
    k0 = list(axes).index(nd - 1)
    elem_axes = [a for a in range(nd - 1) if m1 == 1 or a != k0]
    for a in elem_axes:
        lo_e, hi_e = bounds.get(a, ("0", str(out_shape[a])))
        lines.append(
            f"{pad * depth}for (int64_t x{a} = {lo_e}; x{a} < {hi_e};"
            f" ++x{a}) {{"
        )
        depth += 1
        closes += 1

    souter = "".join(f" + x{a} * {moved[a]}" for a in elem_axes)
    douter = "".join(f" + x{a} * {out_strides[a]}" for a in elem_axes)
    start, stop = bounds.get(n1, ("0", str(out_shape[n1])))
    if m1 == 1:
        # The transpose preserves the input's fastest axis: both sides
        # of the innermost run are contiguous — straight memcpy.
        lines.append(
            f"{pad * depth}const elem_t * restrict s ="
            f" src + {start}{souter};"
        )
        lines.append(
            f"{pad * depth}elem_t * restrict d = dst + {start}{douter};"
        )
        lines.append(
            f"{pad * depth}memcpy(d, s,"
            f" (size_t)({stop} - {start}) * sizeof(elem_t));"
        )
    else:
        # Contiguous-innermost micro-kernel: a 2-D transpose on the
        # (k0, innermost) plane.  Reads are contiguous along j (the
        # input's fastest axis), writes contiguous along x (the
        # output's fastest axis).  When one tile's plane exceeds the
        # cache-resident span, both loops are blocked so each block's
        # read and write lines stay resident while they are reused,
        # instead of streaming one strided side line-by-line; a
        # resident plane keeps plain loops (longer vectorizable runs,
        # no blocking overhead).
        dj = out_strides[k0]
        j_lo, j_hi = bounds.get(k0, ("0", str(out_shape[k0])))
        j_ext = min(tiles[k0], out_shape[k0])
        x_ext = min(tiles[n1], out_shape[n1])
        span = ((j_ext - 1) + (x_ext - 1) * m1 + 1) * eb
        span_w = ((j_ext - 1) * dj + (x_ext - 1) + 1) * eb
        lines.append(
            f"{pad * depth}const elem_t * restrict s = src{souter};"
        )
        lines.append(f"{pad * depth}elem_t * restrict d = dst{douter};")
        if max(span, span_w) <= _RESIDENT_PLANE_BYTES:
            lines.append(
                f"{pad * depth}for (int64_t j = {j_lo}; j < {j_hi};"
                f" ++j) {{"
            )
            lines.append(
                f"{pad * (depth + 1)}const elem_t * restrict ss = s + j;"
            )
            lines.append(
                f"{pad * (depth + 1)}elem_t * restrict dd = d + j * {dj};"
            )
            lines.append(
                f"{pad * (depth + 1)}for (int64_t x = {start}; x < {stop};"
                f" ++x) {{ dd[x] = ss[x * {m1}]; }}"
            )
            lines.append(f"{pad * depth}}}")
        else:
            block = min(64, max(8, 256 // eb))
            lines.append(
                f"{pad * depth}for (int64_t jb = {j_lo}; jb < {j_hi};"
                f" jb += {block}) {{"
            )
            lines.append(
                f"{pad * (depth + 1)}int64_t je = jb + {block} < {j_hi}"
                f" ? jb + {block} : {j_hi};"
            )
            lines.append(
                f"{pad * (depth + 1)}for (int64_t xb = {start};"
                f" xb < {stop}; xb += {block}) {{"
            )
            lines.append(
                f"{pad * (depth + 2)}int64_t xe = xb + {block} < {stop}"
                f" ? xb + {block} : {stop};"
            )
            lines.append(
                f"{pad * (depth + 2)}for (int64_t j = jb; j < je; ++j) {{"
            )
            lines.append(
                f"{pad * (depth + 3)}const elem_t * restrict ss = s + j;"
            )
            lines.append(
                f"{pad * (depth + 3)}elem_t * restrict dd ="
                f" d + j * {dj};"
            )
            lines.append(
                f"{pad * (depth + 3)}for (int64_t x = xb; x < xe; ++x) {{"
                f" dd[x] = ss[x * {m1}]; }}"
            )
            lines.append(f"{pad * (depth + 2)}}}")
            lines.append(f"{pad * (depth + 1)}}}")
            lines.append(f"{pad * depth}}}")
    for _ in range(closes):
        depth -= 1
        lines.append(f"{pad * depth}}}")
    lines += [
        "}",
        "",
        "void repro_nest(const void *src, void *dst,"
        " int64_t lo, int64_t hi) {",
        "    nest_rows((const elem_t *)src, (elem_t *)dst, lo, hi);",
        "}",
        "",
        "void repro_nest_batch(const void *src, void *dst,"
        " int64_t nbatch, int64_t lo, int64_t hi) {",
        "    const elem_t *s = (const elem_t *)src;",
        "    elem_t *d = (elem_t *)dst;",
        "    for (int64_t b = 0; b < nbatch; ++b) {",
        f"        nest_rows(s + b * INT64_C({volume}),"
        f" d + b * INT64_C({volume}), lo, hi);",
        "    }",
        "}",
    ]
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Out-of-band compilation + the on-disk object cache
# ----------------------------------------------------------------------


def object_name(c_source: str, fingerprint: str) -> str:
    """Cache filename of one (source, compiler) pair."""
    sha = hashlib.sha1(c_source.encode()).hexdigest()
    return f"nest{NATIVE_VERSION}-{sha[:16]}-{fingerprint}.so"


#: Serializes in-process compiles: the temp names are unique per PID,
#: so two *threads* of one process would otherwise share them — the
#: loser's rename fails and the winner's published object can still be
#: written through the loser's open fd.
_COMPILE_LOCK = Lock()


def ensure_compiled(c_source: str, cache_dir: Path, tc: dict) -> Path:
    """The compiled shared object for ``c_source``, compiling on miss.

    An existing object under the source-hash + compiler-fingerprint
    name is returned untouched (counted as ``native_so_cache_hits`` —
    this is the zero-compile warm-restart path).  On a miss the source
    is written next to the object for debuggability and compiled with
    :data:`CFLAGS` into a unique temp name, then atomically renamed in,
    so concurrent compilers of the same source converge on one object:
    threads serialize on :data:`_COMPILE_LOCK` (re-checking the cache
    once inside it), processes on the PID-unique temp + rename.
    Raises :class:`NativeCompileError` on any toolchain failure.
    """
    cache_dir = Path(cache_dir)
    so_path = cache_dir / object_name(c_source, tc["fingerprint"])
    if so_path.is_file():
        _COUNT("native_so_cache_hits")
        return so_path
    with _COMPILE_LOCK:
        if so_path.is_file():
            _COUNT("native_so_cache_hits")
            return so_path
        _compile(c_source, cache_dir, so_path, tc)
    _COUNT("native_compiled")
    return so_path


def _compile(c_source: str, cache_dir: Path, so_path: Path, tc: dict):
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        c_path = so_path.with_suffix(".c")
        tmp_c = c_path.with_name(c_path.name + f".{os.getpid()}.tmp")
        tmp_c.write_text(c_source)
        os.replace(tmp_c, c_path)
        tmp_so = so_path.with_name(so_path.name + f".{os.getpid()}.tmp")
        proc = subprocess.run(
            [tc["path"], *CFLAGS, "-o", str(tmp_so), str(c_path)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            timeout=COMPILE_TIMEOUT_S,
        )
        if proc.returncode != 0:
            tmp_so.unlink(missing_ok=True)
            raise NativeCompileError(
                proc.stderr.decode(errors="replace")[:2000]
            )
        os.replace(tmp_so, so_path)
    except NativeCompileError:
        raise
    except (OSError, subprocess.SubprocessError) as exc:
        raise NativeCompileError(str(exc)) from exc


# One CDLL handle per object path: dlopen is cheap but not free, and
# every NestProgram of one geometry shares the same object.
_LOADED: Dict[str, Tuple] = {}
_LOADED_LOCK = Lock()


def load_kernel(so_path) -> Tuple:
    """``(fn, batch_fn)`` ctypes entry points of one compiled object.

    ``CDLL`` (not ``PyDLL``) releases the GIL around every foreign
    call — the whole nest runs GIL-free.  Raises ``OSError`` when the
    object cannot be loaded or lacks the expected symbols.
    """
    key = str(so_path)
    with _LOADED_LOCK:
        hit = _LOADED.get(key)
        if hit is not None:
            return hit
    lib = ctypes.CDLL(key)
    try:
        fn = lib.repro_nest
        batch_fn = lib.repro_nest_batch
    except AttributeError as exc:  # pragma: no cover - corrupt object
        raise OSError(f"missing nest symbols in {key}") from exc
    fn.restype = None
    fn.argtypes = [
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_int64, ctypes.c_int64,
    ]
    batch_fn.restype = None
    batch_fn.argtypes = [
        ctypes.c_void_p, ctypes.c_void_p,
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
    ]
    with _LOADED_LOCK:
        _LOADED[key] = (fn, batch_fn)
    return fn, batch_fn


def clear_loaded_cache() -> None:
    """Drop the in-memory dlopen handles (cold-start benchmark
    conditions; the on-disk object cache is deliberately kept)."""
    with _LOADED_LOCK:
        _LOADED.clear()


def native_kernel(
    in_shape: Sequence[int],
    axes: Sequence[int],
    tiles: Sequence[int],
    order: Sequence[int],
    elem_bytes: int,
    cache_dir=None,
) -> Optional[Tuple]:
    """``(fn, batch_fn)`` for one configuration, or ``None``.

    ``None`` — counted per cause — means the caller keeps the
    numba/python chain: no toolchain (``native_toolchain_missing``),
    unsupported element width (``native_unsupported``), compile
    failure (``native_compile_failures``), or load failure
    (``native_load_failures``).  Never raises.
    """
    if len(in_shape) == 0 or int(elem_bytes) not in SUPPORTED_ELEM_BYTES:
        _COUNT("native_unsupported")
        return None
    tc = toolchain()
    if tc is None:
        _COUNT("native_toolchain_missing")
        return None
    source = native_source(in_shape, axes, tiles, order, elem_bytes)
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    try:
        so_path = ensure_compiled(source, directory, tc)
    except NativeCompileError:
        _COUNT("native_compile_failures")
        return None
    try:
        return load_kernel(so_path)
    except OSError:
        _COUNT("native_load_failures")
        return None
