"""Orthogonal-Distinct kernel (Alg. 2, Fig. 2).

The combined input-FVI group (dims ``0..in_prefix-1`` plus ``blockA``
values of dim ``in_prefix``) and the combined output-FVI group (the first
``out_prefix`` output dims plus ``blockB`` values of the next) are
disjoint, so the per-block slice is the 2D cartesian product
``A x B`` (``A`` contiguous in input, ``B`` contiguous in output) — a
direct generalization of 2D matrix transposition.

Each block walks the slice in ``32 x 32`` tiles through a fixed padded
``32 x 33`` shared-memory buffer (thread coarsening when the slice
exceeds one tile):

- copy-in: warps read 32-element rows along the input-contiguous axis,
  addressed as ``in_base + in_offset[y] + x`` (the ``in_offset`` array is
  precomputed by Alg. 4 and lives in texture memory);
- copy-out: warps read buffer columns and write 32-element rows along the
  output-contiguous axis at ``out_base + out_offset[x] + y``.

Both global phases are fully coalesced; the padded pitch makes the column
reads bank-conflict-free (Sec. III).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.taxonomy import Schema
from repro.gpusim.counters import KernelCounters, LaunchGeometry
from repro.gpusim.engine import WarpAccess
from repro.gpusim.sharedmem import column_access_degree
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec
from repro.core.lru import BoundedLRU
from repro.kernels.base import TransposeKernel
from repro.kernels.common import (
    SliceCoverage,
    block_gather_indices,
    ceil_div,
    dram_transaction_totals,
    normalize_od_geometry,
    od_coverages,
    slice_gather_rel,
    weighted_slice_cycles,
)

#: Fixed tile side (warp size) and pad of the shared buffer (32 x 33).
TILE = 32
PAD = 1

#: Memoized model features per kernel variant (see the OA kernel's
#: cache; cleared via ``repro.core.plan.clear_plan_caches``).
_FEATURE_CACHE: BoundedLRU = BoundedLRU(maxsize=4096)


def clear_feature_cache() -> None:
    """Drop memoized OD feature vectors (cold-start benchmarks)."""
    _FEATURE_CACHE.clear()


class OrthogonalDistinctKernel(TransposeKernel):
    """Generalized tiled matrix transposition over disjoint FVI groups."""

    schema = Schema.ORTHOGONAL_DISTINCT

    THREADS = 256

    def __init__(
        self,
        layout: TensorLayout,
        perm: Permutation,
        in_prefix: int,
        blockA: int,
        out_prefix: int,
        blockB: int,
        elem_bytes: int = 8,
        spec: DeviceSpec = KEPLER_K40C,
    ):
        super().__init__(layout, perm, elem_bytes, spec)
        rank = layout.rank
        geom = normalize_od_geometry(
            layout.dims, perm.mapping, in_prefix, blockA, out_prefix, blockB
        )
        self.geometry = geom
        self.in_prefix, self.blockA = geom.in_prefix, geom.blockA
        self.out_prefix, self.blockB = geom.out_prefix, geom.blockB
        self.a_dim, self.b_dim = geom.a_dim, geom.b_dim
        self.in_full, self.out_full = set(geom.in_full), set(geom.out_full)
        self.A, self.B = geom.A, geom.B

        self.coverage = SliceCoverage(layout, perm, od_coverages(geom, rank))
        self._out_pos = {d: q for q, d in enumerate(perm.mapping)}
        self._in_off_cache: Dict[int, np.ndarray] = {}
        self._out_off_cache: Dict[int, np.ndarray] = {}
        self._dram_tx: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------
    @property
    def launch_geometry(self) -> LaunchGeometry:
        return LaunchGeometry(
            num_blocks=self.coverage.num_blocks,
            threads_per_block=self.THREADS,
            shared_mem_per_block=TILE * (TILE + PAD) * self.elem_bytes,
        )

    # -- offset arrays (Alg. 4 restricted to the disjoint case) ---------
    def in_offset_array(self, b_size: Optional[int] = None) -> np.ndarray:
        """Input offset of each output-group row ``y`` (element units).

        Cached per covered size: partial variants reuse the array across
        :meth:`execute` calls and per-block :meth:`trace` visits.
        """
        b_size = self.B if b_size is None else b_size
        hit = self._in_off_cache.get(b_size)
        if hit is not None:
            return hit
        dims, strides = self.layout.dims, self.layout.strides
        # Output-group dims in OUTPUT order, fastest first.
        order = [self.perm.mapping[q] for q in range(self.out_prefix)]
        extents = [dims[d] for d in order]
        if self.b_dim is not None:
            order.append(self.b_dim)
            extents.append(
                max(1, b_size // max(math.prod(extents), 1))
                if extents
                else b_size
            )
        ys = np.arange(b_size, dtype=np.int64)
        off = np.zeros(b_size, dtype=np.int64)
        rem = ys.copy()
        for d, e in zip(order, extents):
            off += (rem % e) * strides[d]
            rem //= e
        self._in_off_cache[b_size] = off
        return off

    def out_offset_array(self, a_size: Optional[int] = None) -> np.ndarray:
        """Output offset of each input-group column ``x`` (element units).

        Cached per covered size, like :meth:`in_offset_array`.
        """
        a_size = self.A if a_size is None else a_size
        hit = self._out_off_cache.get(a_size)
        if hit is not None:
            return hit
        dims = self.layout.dims
        out_strides = self.out_layout.strides
        order = list(range(self.in_prefix))
        extents = [dims[d] for d in order]
        if self.a_dim is not None:
            order.append(self.a_dim)
            extents.append(
                max(1, a_size // max(math.prod(extents), 1))
                if extents
                else a_size
            )
        xs = np.arange(a_size, dtype=np.int64)
        off = np.zeros(a_size, dtype=np.int64)
        rem = xs.copy()
        for d, e in zip(order, extents):
            off += (rem % e) * out_strides[self._out_pos[d]]
            rem //= e
        self._out_off_cache[a_size] = off
        return off

    def tex_array_bytes(self) -> int:
        return (self.A + self.B) * 4  # int32 offset arrays

    # ------------------------------------------------------------------
    def dram_tx_totals(self) -> Tuple[int, int]:
        """Whole-launch DRAM (load, store) transaction counts.

        Traffic on each side decomposes into effective contiguous runs
        (:func:`repro.kernels.common.effective_runs`): slice rows chained
        through fully covered dims and temporally adjacent blocks, each
        costing its covering 128 B lines once.  Memoized per instance.
        """
        if self._dram_tx is None:
            self._dram_tx = dram_transaction_totals(
                self.layout,
                self.perm,
                self.coverage.by_dim,
                self.elem_bytes,
                self.spec,
            )
        return self._dram_tx

    def _variant_counters(self, a: int, b: int) -> KernelCounters:
        """Analytic counters for one slice of shape ``a x b``.

        DRAM transactions are accounted globally (:meth:`dram_tx_totals`);
        this method covers the per-slice warp/lane/smem/texture activity.
        """
        c = KernelCounters()
        eb, ws = self.elem_bytes, self.spec.warp_size
        # copy-in: for each of b rows, ceil(a/ws) warp reads of <=ws
        # contiguous elements; tile boundaries align to ws*eb.
        ld_acc = b * ceil_div(a, ws)
        st_acc = a * ceil_div(b, ws)
        vol = a * b
        c.dram_ld_useful_bytes = vol * eb
        c.dram_st_useful_bytes = vol * eb
        c.warp_ld_accesses = ld_acc
        c.warp_st_accesses = st_acc
        c.lane_slots = (ld_acc + st_acc) * ws
        c.active_lanes = 2 * vol
        c.smem_st_accesses = ld_acc
        c.smem_ld_accesses = st_acc
        degree = column_access_degree(
            min(ws, b), TILE + PAD, self.spec.shared_mem_banks
        )
        c.smem_conflict_cycles = (degree - 1) * st_acc
        c.tex_accesses = ld_acc + st_acc
        partial = int(a != self.A or b != self.B)
        c.special_ops = 2 * self.layout.rank + partial * 2 * (ld_acc + st_acc)
        c.alu_ops = 6 * vol
        return c

    def slice_variant_shapes(self) -> List[Tuple[int, int, int]]:
        """``(count, a, b)`` for every full/partial slice variant —
        the N1..N4 of the paper's cycles feature."""
        shapes: List[Tuple[int, int, int]] = []
        base_in = self.layout.prefix_volume(self.in_prefix)
        base_out = math.prod(self.layout.dims[d] for d in self.out_full)
        for v in self.coverage.variants():
            a = base_in * (
                v.size_of(self.a_dim, 1) if self.a_dim is not None else 1
            )
            b = base_out * (
                v.size_of(self.b_dim, 1) if self.b_dim is not None else 1
            )
            shapes.append((v.count, a, b))
        return shapes

    def cycles(self) -> int:
        """The Sec. V warp-inefficiency feature for this configuration."""
        return weighted_slice_cycles(self.slice_variant_shapes(), self.spec.warp_size)

    def counters(self) -> KernelCounters:
        total = KernelCounters()
        for count, a, b in self.slice_variant_shapes():
            total += self._variant_counters(a, b).scaled(count)
        total.dram_ld_tx, total.dram_st_tx = self.dram_tx_totals()
        return total

    def features(self) -> Dict[str, float]:
        key = (
            self.layout.dims,
            self.perm.mapping,
            self.in_prefix,
            self.blockA,
            self.out_prefix,
            self.blockB,
            self.elem_bytes,
            self.spec,
        )
        hit = _FEATURE_CACHE.get(key)
        if hit is None:
            hit = super().features()
            hit.update(
                input_slice=float(self.A),
                output_slice=float(self.B),
                cycles=float(self.cycles()),
            )
            _FEATURE_CACHE.put(key, hit)
        return dict(hit)

    # ------------------------------------------------------------------
    def execute_key(self) -> tuple:
        return super().execute_key() + (
            self.in_prefix,
            self.blockA,
            self.out_prefix,
            self.blockB,
        )

    def supports_view_lowering(self) -> bool:
        """Lower to a view chain only when the slices tile exactly
        (no partial-tile variants); see the OA kernel's rationale."""
        return len(self.coverage.variants_order()) == 1

    def _variant_slice_shape(self, sizes: Dict[int, int]) -> Tuple[int, int]:
        """``(a, b)`` slice extents of one variant."""
        base_in = self.layout.prefix_volume(self.in_prefix)
        base_out = math.prod(self.layout.dims[d] for d in self.out_full)
        a = base_in * (sizes.get(self.a_dim, 1) if self.a_dim is not None else 1)
        b = base_out * (sizes.get(self.b_dim, 1) if self.b_dim is not None else 1)
        return a, b

    def variant_rel_maps(self, sizes: Dict[int, int]) -> Tuple[np.ndarray, np.ndarray]:
        """Relative (source, destination) flat index maps of one variant.

        In output-linear order ``t = x * b + y``: the element written at
        ``out_base + out_off[x] + y`` is read from
        ``in_base + in_off[y] + x`` — the two offset-array phases of
        Alg. 2 composed through the tile buffer.
        """
        a, b = self._variant_slice_shape(sizes)
        in_off = self.in_offset_array(b)
        out_off = self.out_offset_array(a)
        dst_rel = slice_gather_rel(out_off, b).reshape(-1)
        src_rel = np.ascontiguousarray(slice_gather_rel(in_off, a).T).reshape(-1)
        return src_rel, dst_rel

    def execute_per_call(self, src: np.ndarray) -> np.ndarray:
        """The pre-compiled-executor path: rebuild the gather and scatter
        index tensors on every call (movement-construction reference and
        benchmark baseline; see the OA kernel's ``execute_per_call``)."""
        src = self.check_input(src)
        dst = np.empty(self.volume, dtype=src.dtype)
        in_base, out_base, variant = self.coverage.block_bases()
        vorder = self.coverage.variants_order()
        for vid, sizes in enumerate(vorder):
            sel = np.nonzero(variant == vid)[0]
            if sel.size == 0:
                continue
            a, b = self._variant_slice_shape(sizes)
            in_off = self.in_offset_array(b)
            out_off = self.out_offset_array(a)
            # Gather the slice as [block, y(B), x(A)] -- the copy-in phase
            # (rows along the input-contiguous axis through the tile
            # buffer), then scatter columns -- the copy-out phase.
            gather = block_gather_indices(
                in_base[sel], slice_gather_rel(in_off, a)
            )
            buf = src[gather].reshape(sel.size, b, a)
            scatter = block_gather_indices(
                out_base[sel], slice_gather_rel(out_off, b)
            )
            dst[scatter.reshape(sel.size, a, b)] = buf.transpose(0, 2, 1)
        return dst

    # ------------------------------------------------------------------
    def trace(self, max_blocks: Optional[int] = None) -> Iterator[WarpAccess]:
        eb, ws = self.elem_bytes, self.spec.warp_size
        in_base, out_base, variant = self.coverage.block_bases(max_blocks)
        vorder = self.coverage.variants_order()
        base_in = self.layout.prefix_volume(self.in_prefix)
        base_out = math.prod(self.layout.dims[d] for d in self.out_full)
        pitch = TILE + PAD
        for blk in range(len(in_base)):
            sizes = vorder[variant[blk]]
            a = base_in * (sizes.get(self.a_dim, 1) if self.a_dim is not None else 1)
            b = base_out * (sizes.get(self.b_dim, 1) if self.b_dim is not None else 1)
            in_off = self.in_offset_array(b)
            out_off = self.out_offset_array(a)
            ib, ob = int(in_base[blk]), int(out_base[blk])
            for ty in range(0, b, TILE):
                hy = min(TILE, b - ty)
                for tx in range(0, a, TILE):
                    hx = min(TILE, a - tx)
                    # copy-in rows
                    for y in range(ty, ty + hy):
                        lanes = np.arange(tx, tx + hx, dtype=np.int64)
                        yield WarpAccess(
                            "gld", (ib + in_off[y] + lanes) * eb, eb, ws
                        )
                        yield WarpAccess("tld", np.array([y * 4]), 4, ws)
                        srow = (y - ty) * pitch + (lanes - tx)
                        yield WarpAccess("sst", srow * eb, eb, ws)
                    # copy-out columns
                    for x in range(tx, tx + hx):
                        lanes = np.arange(ty, ty + hy, dtype=np.int64)
                        scol = (lanes - ty) * pitch + (x - tx)
                        yield WarpAccess("sld", scol * eb, eb, ws)
                        yield WarpAccess("tld", np.array([x * 4]), 4, ws)
                        yield WarpAccess(
                            "gst", (ob + out_off[x] + lanes) * eb, eb, ws
                        )
