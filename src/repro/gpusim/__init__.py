"""A deterministic Kepler-class GPU memory-system simulator.

This subpackage is the hardware substitute for the Tesla K40c used in the
paper's evaluation (DESIGN.md section 2).  It models the parts of the GPU
that determine tensor-transposition performance:

- warp-granularity global-memory coalescing into 128-byte transactions
  (:mod:`repro.gpusim.transactions`),
- the 32-bank shared memory with conflict serialization
  (:mod:`repro.gpusim.sharedmem`),
- a texture cache for the read-only offset arrays
  (:mod:`repro.gpusim.texture`),
- occupancy and wave/tail effects (:mod:`repro.gpusim.occupancy`),
- a calibrated cost model turning transaction counters into seconds
  (:mod:`repro.gpusim.cost`), and
- a slow per-warp "detailed" execution engine used to validate the
  kernels' analytic counters (:mod:`repro.gpusim.engine`).
"""

from repro.gpusim.counters import KernelCounters, LaunchGeometry
from repro.gpusim.cost import CostModel
from repro.gpusim.noise import measurement_jitter
from repro.gpusim.occupancy import Occupancy, occupancy_for
from repro.gpusim.spec import KEPLER_K40C, PASCAL_P100, DeviceSpec

__all__ = [
    "DeviceSpec",
    "KEPLER_K40C",
    "PASCAL_P100",
    "KernelCounters",
    "LaunchGeometry",
    "CostModel",
    "Occupancy",
    "occupancy_for",
    "measurement_jitter",
]
