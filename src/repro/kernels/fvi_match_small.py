"""FVI-Match-Small kernel (Alg. 6, Fig. 4).

The fastest-varying index matches but its extent ``N0`` is below the warp
size, so direct copying would waste most of each warp.  Instead a thread
block stages a ``b x b x N0`` slice (``b`` values of the input's second
index ``i1``, ``b`` values of the output's second index ``ik``, all of
``i0``) through shared memory:

- copy-in: each of the block's ``b`` warps streams ``b * N0`` contiguous
  input elements (a bundle of ``b`` consecutive ``i1``-rows for one
  ``ik`` value);
- copy-out: each warp gathers ``b`` vertically stacked "pencils" from the
  buffer and writes ``b * N0`` contiguous output elements.

A pad chosen per ``N0`` (see :func:`repro.gpusim.sharedmem.conflict_free_pad`)
staggers the buffer rows so the pencil gather is bank-conflict-free.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.taxonomy import Schema
from repro.errors import SchemaError
from repro.gpusim.counters import KernelCounters, LaunchGeometry
from repro.gpusim.engine import WarpAccess
from repro.gpusim.sharedmem import conflict_free_pad, conflict_degree
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec
from repro.kernels.base import TransposeKernel
from repro.kernels.common import (
    Coverage,
    DimCoverage,
    SliceCoverage,
    ceil_div,
    effective_runs,
    lattice_run_transactions,
)


class FviMatchSmallKernel(TransposeKernel):
    """Blocked shared-memory staging for small matching FVI."""

    schema = Schema.FVI_MATCH_SMALL

    def __init__(
        self,
        layout: TensorLayout,
        perm: Permutation,
        b: int,
        elem_bytes: int = 8,
        spec: DeviceSpec = KEPLER_K40C,
    ):
        super().__init__(layout, perm, elem_bytes, spec)
        if not perm.fvi_matches():
            raise SchemaError("FVI-Match-Small requires matching FVI")
        if layout.rank < 3:
            raise SchemaError(
                "FVI-Match-Small needs rank >= 3 after fusion "
                f"(got rank {layout.rank})"
            )
        self.n0 = layout.dims[0]
        if self.n0 >= spec.warp_size:
            raise SchemaError(
                f"FVI extent {self.n0} >= warp size: use FVI-Match-Large"
            )
        self.i1 = 1                      # input's second-fastest dim
        self.ik = perm.mapping[1]        # output's second-fastest dim
        if self.ik == self.i1:
            raise SchemaError(
                "input and output second dims coincide; fuse first"
            )
        if not 1 <= b <= min(spec.warp_size, spec.max_threads_per_block // spec.warp_size):
            raise SchemaError(f"blocking factor b={b} out of range")
        self.b = b
        self.pad = conflict_free_pad(
            self.n0, b * self.n0, spec.shared_mem_banks
        )
        smem_bytes = b * (b * self.n0 + self.pad) * elem_bytes
        if smem_bytes > spec.shared_mem_per_sm:
            raise SchemaError(
                f"b={b} with N0={self.n0} needs {smem_bytes} B shared "
                f"memory; SM has {spec.shared_mem_per_sm} B"
            )
        covs = [DimCoverage(0, Coverage.FULL)]
        for d in range(1, layout.rank):
            if d in (self.i1, self.ik):
                covs.append(DimCoverage(d, Coverage.BLOCK, b))
            else:
                covs.append(DimCoverage(d, Coverage.OUTER))
        self.coverage = SliceCoverage(layout, perm, covs)

    # ------------------------------------------------------------------
    @property
    def launch_geometry(self) -> LaunchGeometry:
        ws = self.spec.warp_size
        row_words = self.b * self.n0 + self.pad
        return LaunchGeometry(
            num_blocks=self.coverage.num_blocks,
            threads_per_block=self.b * ws,
            shared_mem_per_block=self.b * row_words * self.elem_bytes,
        )

    def smem_read_conflict_degree(self) -> int:
        """Bank-conflict degree of the pencil-gather read, given the pad."""
        ws = self.spec.warp_size
        pitch = self.b * self.n0 + self.pad
        lanes = np.arange(ws, dtype=np.int64)
        words = (lanes // self.n0) * pitch + (lanes % self.n0)
        return conflict_degree(words, self.spec.shared_mem_banks)

    # ------------------------------------------------------------------
    def dram_tx_totals(self) -> Tuple[int, int]:
        """Whole-launch DRAM (load, store) transaction counts via the
        effective-run decomposition (see the orthogonal kernels)."""
        eb = self.elem_bytes
        vol = self.volume
        resident = self.spec.block_slots

        def total(order):
            t = 0.0
            for count, r in effective_runs(
                order, self.coverage.by_dim, self.layout.dims, vol, resident
            ):
                lat = math.gcd(self.spec.transaction_bytes, r * eb)
                t += count * lattice_run_transactions(r, eb, lat)
            return int(round(t))

        return total(range(self.layout.rank)), total(self.perm.mapping)

    def _variant_counters(
        self, b1: int, bk: int
    ) -> Tuple[KernelCounters, int]:
        """Per-block counters for shape (b1 on i1, bk on ik); DRAM
        transactions are accounted globally by :meth:`dram_tx_totals`."""
        c = KernelCounters()
        eb, ws = self.elem_bytes, self.spec.warp_size
        n0 = self.n0
        in_run = b1 * n0
        out_run = bk * n0
        ld_acc_per_warp = ceil_div(in_run, ws)
        st_acc_per_warp = ceil_div(out_run, ws)
        c.warp_ld_accesses = bk * ld_acc_per_warp
        c.warp_st_accesses = b1 * st_acc_per_warp
        vol = b1 * bk * n0
        c.dram_ld_useful_bytes = vol * eb
        c.dram_st_useful_bytes = vol * eb
        c.lane_slots = (c.warp_ld_accesses + c.warp_st_accesses) * ws
        c.active_lanes = 2 * vol
        c.smem_st_accesses = c.warp_ld_accesses
        c.smem_ld_accesses = c.warp_st_accesses
        degree = self.smem_read_conflict_degree()
        c.smem_conflict_cycles = (degree - 1) * c.smem_ld_accesses
        partial = int(b1 != self.b or bk != self.b)
        c.special_ops = (self.layout.rank * 2) + partial * (
            4 * (c.warp_ld_accesses + c.warp_st_accesses)
        )
        c.alu_ops = 4 * vol
        return c, vol

    def counters(self) -> KernelCounters:
        total = KernelCounters()
        for v in self.coverage.variants():
            b1 = v.size_of(self.i1, self.b)
            bk = v.size_of(self.ik, self.b)
            per_block, _ = self._variant_counters(b1, bk)
            total += per_block.scaled(v.count)
        total.dram_ld_tx, total.dram_st_tx = self.dram_tx_totals()
        return total

    def features(self) -> Dict[str, float]:
        base = super().features()
        base.update(
            slice_volume=float(self.b * self.b * self.n0),
            block_b=float(self.b),
            fvi_extent=float(self.n0),
            conflict_degree=float(self.smem_read_conflict_degree()),
        )
        return base

    # ------------------------------------------------------------------
    # ------------------------------------------------------------------
    def trace(self, max_blocks: Optional[int] = None) -> Iterator[WarpAccess]:
        eb, ws = self.elem_bytes, self.spec.warp_size
        n0 = self.n0
        in_strides = self.layout.strides
        out_strides = self.out_layout.strides
        out_pos = {d: q for q, d in enumerate(self.perm.mapping)}
        in_base, out_base, variant = self.coverage.block_bases(max_blocks)
        vorder = self.coverage.variants_order()
        pitch = self.b * n0 + self.pad
        for blk in range(len(in_base)):
            sizes = vorder[variant[blk]]
            b1 = sizes.get(self.i1, self.b)
            bk = sizes.get(self.ik, self.b)
            ib, ob = int(in_base[blk]), int(out_base[blk])
            # copy-in: warp w handles ik-value w, reads b1*n0 contiguous.
            for w in range(bk):
                start = ib + w * in_strides[self.ik]
                run = b1 * n0
                for a0 in range(0, run, ws):
                    lanes = np.arange(a0, min(a0 + ws, run), dtype=np.int64)
                    yield WarpAccess("gld", (start + lanes) * eb, eb, ws)
                    # smem store: row w of the padded buffer, contiguous.
                    yield WarpAccess(
                        "sst", (w * pitch + lanes) * eb, eb, ws
                    )
            # copy-out: warp w handles i1-value w, writes bk*n0 contiguous
            # output gathered as pencils from the buffer.
            for w in range(b1):
                out_start = ob + w * out_strides[out_pos[self.i1]]
                run = bk * n0
                for a0 in range(0, run, ws):
                    lanes = np.arange(a0, min(a0 + ws, run), dtype=np.int64)
                    rows = lanes // n0  # ik index within block
                    cols = w * n0 + lanes % n0
                    yield WarpAccess("sld", (rows * pitch + cols) * eb, eb, ws)
                    yield WarpAccess("gst", (out_start + lanes) * eb, eb, ws)
