"""The d-nested-loop strawman as a library (for ablation benches)."""

from __future__ import annotations

from typing import Sequence

from repro.baselines.library import LibraryPlan, TransposeLibrary
from repro.kernels.naive import NaiveKernel


class NaiveLibrary(TransposeLibrary):
    """Always uses the elementwise kernel; zero planning."""

    name = "Naive"

    def plan(
        self, dims: Sequence[int], perm: Sequence[int], elem_bytes: int = 8
    ) -> LibraryPlan:
        fused = self.fuse(dims, perm)
        kernel = NaiveKernel(fused.layout, fused.perm, elem_bytes, self.spec)
        return LibraryPlan(
            library=self.name,
            kernel=kernel,
            plan_time=self.spec.alloc_overhead_s,
            num_candidates=1,
        )
