"""Unit + concurrency tests for repro.core.lru.BoundedLRU.

The LRU backs the process-wide program cache and every process-pool
worker's program/segment caches, where scheduler threads, the pool
collector, and stats readers hit it concurrently — so beyond the
single-threaded contract, a multi-threaded hammer asserts the bounds
and counters stay coherent under contention.
"""

import threading

import pytest

from repro.core.lru import BoundedLRU


class TestContract:
    def test_get_put_roundtrip(self):
        lru = BoundedLRU(maxsize=4)
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert "a" in lru
        assert lru.get("missing") is None
        assert lru.get("missing", 0) == 0

    def test_count_bound_evicts_oldest(self):
        lru = BoundedLRU(maxsize=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("c", 3)
        assert "a" not in lru
        assert lru.get("b") == 2 and lru.get("c") == 3
        assert lru.stats()["evictions"] == 1

    def test_get_refreshes_recency(self):
        lru = BoundedLRU(maxsize=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")  # now "b" is the oldest
        lru.put("c", 3)
        assert "a" in lru
        assert "b" not in lru

    def test_byte_bound_evicts(self):
        lru = BoundedLRU(maxsize=100, max_bytes=10, sizeof=len)
        lru.put("a", b"xxxx")
        lru.put("b", b"xxxx")
        lru.put("c", b"xxxx")  # 12 bytes total: "a" must go
        assert "a" not in lru
        assert lru.nbytes == 8

    def test_values_snapshot_oldest_first(self):
        lru = BoundedLRU(maxsize=4)
        for i in range(3):
            lru.put(i, i * 10)
        assert lru.values() == [0, 10, 20]

    def test_clear_and_reset(self):
        lru = BoundedLRU(maxsize=4, max_bytes=100, sizeof=lambda v: 8)
        lru.put("a", 1)
        lru.get("a")
        lru.clear()
        assert len(lru) == 0
        assert lru.nbytes == 0
        lru.reset_stats()
        assert lru.stats()["hits"] == 0


class TestConcurrentHammer:
    """Many threads get/put/read one small LRU; the bounds and the
    books must hold at every observation point and at the end."""

    THREADS = 8
    OPS = 400
    MAXSIZE = 16
    MAX_BYTES = 1024

    def test_hammer(self):
        lru = BoundedLRU(
            maxsize=self.MAXSIZE,
            max_bytes=self.MAX_BYTES,
            sizeof=lambda v: len(v),
        )
        start = threading.Barrier(self.THREADS)
        errors = []

        def worker(tid):
            try:
                start.wait()
                for i in range(self.OPS):
                    key = (tid * 7 + i) % 40  # overlapping key space
                    if i % 3 == 0:
                        lru.put(key, bytes(8 + (key % 5) * 16))
                    elif i % 3 == 1:
                        value = lru.get(key)
                        assert value is None or isinstance(value, bytes)
                    else:
                        # Snapshot reads race the writers.
                        assert len(lru) <= self.MAXSIZE
                        assert lru.nbytes <= self.MAX_BYTES
                        for value in lru.values():
                            assert isinstance(value, bytes)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        assert len(lru) <= self.MAXSIZE
        assert lru.nbytes <= self.MAX_BYTES
        stats = lru.stats()
        assert stats["entries"] == len(lru)
        assert stats["bytes"] == lru.nbytes
        assert stats["hits"] + stats["misses"] > 0
        # Final sanity: the byte books rebalance from scratch.
        expected = sum(len(v) for v in lru.values())
        assert lru.nbytes == expected

    def test_hammer_with_concurrent_clear(self):
        lru = BoundedLRU(maxsize=8)
        stop = threading.Event()
        errors = []

        def churn():
            try:
                i = 0
                while not stop.is_set():
                    lru.put(i % 20, i)
                    lru.get((i + 3) % 20)
                    i += 1
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for t in threads:
            t.start()
        for _ in range(50):
            lru.clear()
            assert len(lru) <= 8
        stop.set()
        for t in threads:
            t.join()
        assert not errors


@pytest.mark.parametrize("maxsize", [0, -1])
def test_nonpositive_maxsize_rejected(maxsize):
    with pytest.raises(ValueError):
        BoundedLRU(maxsize=maxsize)
