"""Readinto framed transport: the ingress half of the zero-copy path.

:class:`asyncio.StreamReader` costs every inbound frame two full extra
passes — the socket chunk is ``extend``-ed into the reader's internal
``bytearray``, then ``readexactly`` carves an owned copy back out — plus
an epoll register/unregister storm, because multi-MiB frames overflow
the reader's 64 KiB flow-control limit on every chunk.  For a serving
path whose premise is that transposition is memory-bandwidth-bound
(so a redundant pass over the tensor costs as much as the transpose),
that is the single largest avoidable cost left once the codec stops
copying.

:class:`FrameConnection` replaces the stream pair with one
:class:`asyncio.BufferedProtocol`: the event loop ``recv_into``\\ s the
kernel's bytes **directly into the frame-body buffer** that
:func:`~repro.serving.codec.decode` then reads in place — ingress
tensor bytes are touched exactly once in user space (the decode slice
into caller-provided storage) after the unavoidable socket read.
Egress reuses :func:`~repro.serving.codec.write_parts` semantics:
:meth:`FrameConnection.write` hands each tensor memoryview straight to
the transport, which sends from the source array's memory whenever the
socket accepts the bytes inline.

Decoding happens inside the protocol callback through a caller-supplied
``decoder(body: bytearray) -> Any``, so each side binds its own
landing policy (the server leases a fresh
:class:`~repro.runtime.arena.BufferArena` scope per frame, the client
decodes into fresh arrays) and :meth:`read_frame` yields fully
materialized messages.  Decoded-but-unconsumed frames are bounded by
``high_water``; past it the transport pauses reading until the consumer
catches up.

Only the zero-copy data path runs on this transport.  The copying
baseline (``zero_copy=False``) keeps the original
``StreamReader``/``read_frame`` machinery, so the load benchmark's
comparison measures the old data path against the new one end to end.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Callable, List, Optional

from repro.errors import ProtocolError
from repro.serving.codec import (
    DEFAULT_MAX_FRAME_BYTES,
    WRITE_COALESCE_MAX,
    FrameTooLargeError,
    _part_nbytes,
)

_HEADER_LEN = 4


class FrameConnection(asyncio.BufferedProtocol):
    """One framed connection: readinto ingress, scatter-gather egress.

    The read side is a two-state machine (header, then body): each
    ``get_buffer`` hands the event loop a view of exactly the bytes the
    current frame still needs, so the kernel writes them in place and
    no reassembly buffer exists.  A completed body is decoded
    immediately (``decoder``) and queued for :meth:`read_frame`; decode
    failures and oversized length prefixes are queued as the exceptions
    the streams path would have raised, in arrival order.

    The write side mirrors enough of :class:`asyncio.StreamWriter`
    (``write`` / ``drain`` / ``is_closing`` / ``close`` /
    ``wait_closed``) that the serving code drives either interchangeably.
    """

    def __init__(
        self,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        decoder: Callable[[bytearray], Any],
        high_water: int = 32,
        on_connect: Optional[Callable[["FrameConnection"], None]] = None,
    ):
        self.max_frame_bytes = max_frame_bytes
        self._decoder = decoder
        self._high_water = high_water
        self._on_connect = on_connect
        self._transport: Optional[asyncio.Transport] = None
        # -- read state --------------------------------------------------
        self._header = bytearray(_HEADER_LEN)
        self._hview = memoryview(self._header)
        self._body: Optional[bytearray] = None
        self._bview: Optional[memoryview] = None
        self._pos = 0
        self._in_body = False
        self._fatal = False
        self._trash: Optional[memoryview] = None  # sink after a fatal error
        self._items: deque = deque()  # ("msg", value) | ("exc", exception)
        self._read_waiter: Optional[asyncio.Future] = None
        self._read_paused = False
        self._final_exc: Optional[BaseException] = None
        self._eof_delivered = False
        # -- write state -------------------------------------------------
        self._write_paused = False
        self._drain_waiters: deque = deque()
        self._closed_fut: Optional[asyncio.Future] = None

    # ------------------------------------------------------------------
    # asyncio.BufferedProtocol callbacks
    # ------------------------------------------------------------------
    def connection_made(self, transport) -> None:
        self._transport = transport
        self._closed_fut = asyncio.get_running_loop().create_future()
        if self._on_connect is not None:
            self._on_connect(self)

    def get_buffer(self, sizehint: int):
        if self._fatal:
            if self._trash is None:
                self._trash = memoryview(bytearray(65536))
            return self._trash
        if self._in_body:
            return self._bview[self._pos :]
        return self._hview[self._pos :]

    def buffer_updated(self, nbytes: int) -> None:
        if self._fatal:
            return
        self._pos += nbytes
        if not self._in_body:
            if self._pos < _HEADER_LEN:
                return
            n = int.from_bytes(self._header, "big")
            if n > self.max_frame_bytes:
                self._deliver_exc(
                    FrameTooLargeError(
                        f"frame declares a {n}-byte body "
                        f"(cap {self.max_frame_bytes})"
                    )
                )
                return
            if n == 0:
                # An empty body can never hold an encoded value; fail
                # exactly like decode(b"") on the streams path would.
                self._deliver_exc(
                    ProtocolError("truncated body: need 1 bytes at offset 0, have 0")
                )
                return
            self._body = bytearray(n)
            self._bview = memoryview(self._body)
            self._pos = 0
            self._in_body = True
            return
        if self._pos < len(self._body):
            return
        body, self._body, self._bview = self._body, None, None
        self._pos = 0
        self._in_body = False
        try:
            # Decode in place: tensor payloads are sliced out of `body`
            # straight into whatever storage the decoder's factory
            # provides; everything else fully materializes, so the
            # buffer dies here and no frame outlives its decode.
            item = ("msg", self._decoder(body))
        except BaseException as exc:
            self._deliver_exc(exc)
            return
        self._deliver(item)

    def eof_received(self) -> bool:
        if not self._fatal:
            if self._in_body or self._pos:
                got = self._pos
                want = len(self._body) if self._in_body else _HEADER_LEN
                where = "body" if self._in_body else "header"
                self._deliver_exc(
                    ProtocolError(
                        f"connection closed inside a frame {where} "
                        f"({got}/{want} bytes)"
                    )
                )
            else:
                self._eof_delivered = True
                self._deliver_exc(EOFError("connection closed between frames"))
        return False  # let the transport close

    def connection_lost(self, exc: Optional[BaseException]) -> None:
        if self._final_exc is None:
            self._final_exc = (
                exc
                if exc is not None
                else EOFError("connection closed between frames")
            )
        if exc is not None and not self._fatal:
            self._deliver(("exc", exc))
            self._fatal = True
        elif not self._eof_delivered and not self._fatal:
            self._eof_delivered = True
            self._deliver(("exc", EOFError("connection closed between frames")))
            self._fatal = True
        self._wake_reader()
        err = ConnectionResetError(f"connection lost: {exc}")
        while self._drain_waiters:
            waiter = self._drain_waiters.popleft()
            if not waiter.done():
                waiter.set_exception(err)
        if self._closed_fut is not None and not self._closed_fut.done():
            self._closed_fut.set_result(None)

    def pause_writing(self) -> None:
        self._write_paused = True

    def resume_writing(self) -> None:
        self._write_paused = False
        while self._drain_waiters:
            waiter = self._drain_waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)

    # ------------------------------------------------------------------
    # delivery plumbing
    # ------------------------------------------------------------------
    def _deliver(self, item) -> None:
        self._items.append(item)
        self._wake_reader()
        if (
            not self._read_paused
            and len(self._items) >= self._high_water
            and self._transport is not None
        ):
            try:
                self._transport.pause_reading()
                self._read_paused = True
            except (RuntimeError, AttributeError):
                pass

    def _deliver_exc(self, exc: BaseException) -> None:
        # The stream position is unrecoverable past any frame-level
        # error; deliver it in order, then sink whatever else arrives.
        self._fatal = True
        self._deliver(("exc", exc))

    def _wake_reader(self) -> None:
        waiter, self._read_waiter = self._read_waiter, None
        if waiter is not None and not waiter.done():
            waiter.set_result(None)

    # ------------------------------------------------------------------
    # consumer API (read side)
    # ------------------------------------------------------------------
    async def read_frame(self) -> Any:
        """The next decoded message, in arrival order.

        Raises whatever the streams path would have: :class:`EOFError`
        on a clean close between frames, :class:`FrameTooLargeError` on
        an oversized length prefix, :class:`ProtocolError` on a decode
        failure or mid-frame hangup, and the transport's own exception
        on an abortive close.
        """
        while True:
            if self._items:
                kind, value = self._items.popleft()
                if (
                    self._read_paused
                    and not self._fatal
                    and len(self._items) <= self._high_water // 2
                    and self._transport is not None
                ):
                    try:
                        self._transport.resume_reading()
                        self._read_paused = False
                    except (RuntimeError, AttributeError):
                        pass
                if kind == "msg":
                    return value
                raise value
            if self._final_exc is not None:
                raise self._final_exc
            loop = asyncio.get_running_loop()
            self._read_waiter = loop.create_future()
            try:
                await self._read_waiter
            finally:
                self._read_waiter = None

    # ------------------------------------------------------------------
    # writer API (StreamWriter-compatible subset)
    # ------------------------------------------------------------------
    def write(self, data) -> None:
        self._transport.write(data)

    def write_parts(
        self, parts: List[Any], coalesce_max: int = WRITE_COALESCE_MAX
    ) -> None:
        """Scatter-gather frame write, as :func:`codec.write_parts`."""
        small: List[Any] = []
        for part in parts:
            if _part_nbytes(part) <= coalesce_max:
                small.append(part)
                continue
            if small:
                self._transport.write(b"".join(small))
                small.clear()
            self._transport.write(part)
        if small:
            self._transport.write(b"".join(small))

    async def drain(self) -> None:
        if self._final_exc is not None and not isinstance(
            self._final_exc, EOFError
        ):
            raise ConnectionResetError(f"connection lost: {self._final_exc}")
        if self._transport is None or self._transport.is_closing():
            # Mirror StreamWriter.drain on a closing transport.
            await asyncio.sleep(0)
            return
        if not self._write_paused:
            return
        waiter = asyncio.get_running_loop().create_future()
        self._drain_waiters.append(waiter)
        await waiter

    def is_closing(self) -> bool:
        return self._transport is None or self._transport.is_closing()

    def close(self) -> None:
        if self._transport is not None:
            self._transport.close()

    async def wait_closed(self) -> None:
        if self._closed_fut is not None:
            await self._closed_fut

    def get_extra_info(self, name: str, default=None):
        if self._transport is None:
            return default
        return self._transport.get_extra_info(name, default)
