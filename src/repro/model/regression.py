"""Ordinary-least-squares linear regression with Table II statistics.

Implements exactly what the paper reports per feature: coefficient
estimate, standard error, t value, and ``Pr(>|t|)``, plus the paper's
precision metric ``mean(|actual - predicted| / actual) * 100``.

Built on :func:`numpy.linalg.lstsq` with the covariance machinery done
explicitly (no statsmodels in the environment); p-values use
:mod:`scipy.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy import stats

from repro.errors import ModelError


@dataclass(frozen=True)
class CoefficientStats:
    """One row of the Table II summary."""

    name: str
    estimate: float
    std_error: float
    t_value: float
    p_value: float

    def format_row(self) -> str:
        p = "<2e-16" if self.p_value < 2e-16 else f"{self.p_value:.3g}"
        return (
            f"{self.name:<14s} {self.estimate: .3e}  {self.std_error:.3e}  "
            f"{self.t_value:9.2f}  {p}"
        )


@dataclass(frozen=True)
class RegressionSummary:
    """Fit statistics in the paper's reporting format."""

    rows: List[CoefficientStats]
    intercept: CoefficientStats
    r_squared: float
    n_samples: int

    def format_table(self) -> str:
        header = (
            f"{'Feature':<14s} {'Estimate':>10s}  {'Std. Error':>9s}  "
            f"{'t value':>9s}  Pr(>|t|)"
        )
        lines = [header] + [r.format_row() for r in self.rows]
        lines.append(self.intercept.format_row())
        lines.append(f"R^2 = {self.r_squared:.6f}   n = {self.n_samples}")
        return "\n".join(lines)


@dataclass
class FittedModel:
    """A fitted per-kernel time model: ``t = X @ coef + intercept``."""

    feature_names: List[str]
    coef: np.ndarray
    intercept: float
    summary: Optional[RegressionSummary] = None

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != len(self.feature_names):
            raise ModelError(
                f"expected {len(self.feature_names)} features, got {X.shape[1]}"
            )
        return X @ self.coef + self.intercept

    def predict_one(self, x: Sequence[float]) -> float:
        return float(self.predict(np.asarray(x, dtype=np.float64)[None, :])[0])

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Score ``N`` feature rows in one matrix–vector product.

        Equivalent to ``N`` :meth:`predict_one` calls (same BLAS GEMV up
        to summation order; differences sit at the last ulp) but
        amortizes the per-call overhead — the planner's phase-2 batch
        path.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ModelError(f"X must be 2-D, got shape {X.shape}")
        return self.predict(X)

    def precision_error_pct(self, X: np.ndarray, y: np.ndarray) -> float:
        """The paper's precision metric:
        ``mean(|actual - predicted| / actual) * 100``."""
        y = np.asarray(y, dtype=np.float64)
        if np.any(y <= 0):
            raise ModelError("actual times must be positive")
        pred = self.predict(X)
        return float(np.mean(np.abs(y - pred) / y) * 100.0)


class LinearRegression:
    """OLS fitter producing :class:`FittedModel` with full statistics."""

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        feature_names: Sequence[str],
        weighting: str = "relative",
    ) -> FittedModel:
        """Fit ``t = X @ coef + intercept``.

        ``weighting="relative"`` (default) weights each sample by
        ``1 / y`` so the fit minimizes *relative* squared error — the
        right objective for the paper's ``|actual-pred| / actual``
        precision metric over times spanning several decades.
        ``weighting="none"`` gives plain OLS.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ModelError(f"X must be 2-D, got shape {X.shape}")
        n, k = X.shape
        if len(feature_names) != k:
            raise ModelError(
                f"{len(feature_names)} names for {k} feature columns"
            )
        if y.shape != (n,):
            raise ModelError(f"y shape {y.shape} does not match X rows {n}")
        if n <= k + 1:
            raise ModelError(
                f"need more samples ({n}) than parameters ({k + 1}) to fit"
            )
        if weighting == "relative":
            if np.any(y <= 0):
                raise ModelError("relative weighting needs positive times")
            w = 1.0 / y
        elif weighting == "none":
            w = np.ones(n)
        else:
            raise ModelError(f"unknown weighting {weighting!r}")
        # Design matrix with intercept column last; weighted least squares
        # solved as OLS on the sqrt(w)-scaled system.
        A = np.hstack([X, np.ones((n, 1))])
        sw = np.sqrt(w)[:, None]
        beta, _, rank, _ = np.linalg.lstsq(A * sw, y * sw[:, 0], rcond=None)
        resid = (y - A @ beta) * sw[:, 0]
        dof = n - (k + 1)
        sigma2 = float(resid @ resid) / dof
        # Covariance of the estimator; pinv tolerates collinear features.
        cov = sigma2 * np.linalg.pinv((A * sw).T @ (A * sw))
        se = np.sqrt(np.clip(np.diag(cov), 0.0, None))
        with np.errstate(divide="ignore", invalid="ignore"):
            t_vals = np.where(se > 0, beta / se, np.inf)
        p_vals = 2.0 * stats.t.sf(np.abs(t_vals), dof)

        plain_resid = y - A @ beta
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        r2 = (
            1.0 - float(plain_resid @ plain_resid) / ss_tot
            if ss_tot > 0
            else 1.0
        )

        rows = [
            CoefficientStats(
                name=str(feature_names[i]),
                estimate=float(beta[i]),
                std_error=float(se[i]),
                t_value=float(t_vals[i]),
                p_value=float(p_vals[i]),
            )
            for i in range(k)
        ]
        intercept = CoefficientStats(
            name="(Intercept)",
            estimate=float(beta[k]),
            std_error=float(se[k]),
            t_value=float(t_vals[k]),
            p_value=float(p_vals[k]),
        )
        summary = RegressionSummary(
            rows=rows, intercept=intercept, r_squared=r2, n_samples=n
        )
        return FittedModel(
            feature_names=list(feature_names),
            coef=beta[:k].copy(),
            intercept=float(beta[k]),
            summary=summary,
        )
