"""Property-based bit-exactness for every executor program kind.

For random (dims, perm, dtype) problems — bounded volume, derandomized
so CI is reproducible — every way the repository can execute a
transposition must agree bit-for-bit with the plain ``np.transpose``
reference: the lowered view/region route, the forced index-map route,
the chunked route, the codegen compile route, and a directly generated
:class:`~repro.kernels.codegen.NestProgram` (built from the search
descriptor regardless of the profitability verdict, so the generated
nest is exercised on arbitrary small geometries, not just the large
cases where it is actually deployed).  Each program is checked on
``run``, ``run(out=)``, ``run_batch``, and the ``partition`` /
``run_part`` path the scheduler uses.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.permutation import Permutation
from repro.core.plan import make_plan
from repro.kernels.codegen import NestProgram, search_nest
from repro.kernels.executor import compile_executor

DTYPES = (np.float64, np.float32, np.int64, np.int32, np.complex128)

#: Keep every drawn problem comfortably small: the point is coverage of
#: geometry/kind combinations, not throughput.
MAX_VOLUME = 4096


@st.composite
def problems(draw):
    rank = draw(st.integers(1, 5))
    dims = []
    volume = 1
    for _ in range(rank):
        extent = draw(st.integers(1, max(1, MAX_VOLUME // volume)))
        dims.append(extent)
        volume *= extent
    perm = tuple(draw(st.permutations(range(rank))))
    dtype = draw(st.sampled_from(DTYPES))
    return tuple(dims), perm, dtype


def _source(volume, dtype, seed=11):
    rng = np.random.default_rng(seed)
    if np.issubdtype(dtype, np.complexfloating):
        return (
            rng.standard_normal(volume) + 1j * rng.standard_normal(volume)
        ).astype(dtype)
    if np.issubdtype(dtype, np.integer):
        return rng.integers(-(1 << 30), 1 << 30, volume).astype(dtype)
    return rng.standard_normal(volume).astype(dtype)


def _np_reference(src, dims, perm):
    """The independent oracle: reshape, np.transpose, ravel."""
    axes = Permutation(perm).numpy_axes()
    return np.ascontiguousarray(
        np.transpose(src.reshape(dims[::-1]), axes)
    ).ravel()


def _check_all_surfaces(program, src, ref, dims, perm):
    assert np.array_equal(program.run(src), ref)
    out = np.empty_like(src)
    assert program.run(src, out=out) is out
    assert np.array_equal(out, ref)

    srcs = np.stack([src, np.roll(src, 1), src[::-1].copy()])
    refs = np.stack([_np_reference(s, dims, perm) for s in srcs])
    assert np.array_equal(program.run_batch(srcs), refs)

    out = np.empty_like(src)
    tasks = program.partition(3)
    assert tasks, "partition returned no tasks"
    for task in tasks:
        program.run_part(src, out, task)
    assert np.array_equal(out, ref)


@given(problems())
@settings(max_examples=60, deadline=None, derandomize=True)
def test_compiled_programs_match_numpy(problem):
    """Every compile route agrees with np.transpose on every surface."""
    dims, perm, dtype = problem
    # Kernels model elem_bytes as 4 or 8; wider dtypes (complex128)
    # still execute correctly — the cost model just prices f64 lines.
    eb = 4 if np.dtype(dtype).itemsize == 4 else 8
    plan = make_plan(dims, perm, elem_bytes=eb)
    src = _source(plan.layout.volume, dtype)
    ref = _np_reference(src, dims, perm)

    routes = (
        {},  # lowered: view or region
        {"lowering": False},  # indexed
        {"lowering": False, "max_index_bytes": 64},  # chunked for most
        {"lowering": False, "codegen": True},  # nest or its fallback
    )
    kinds = set()
    for opts in routes:
        program = compile_executor(plan.kernel, **opts)
        kinds.add(program.kind)
        _check_all_surfaces(program, src, ref, dims, perm)
    # The distinct routes really produced distinct machinery.  A fused
    # identity (or near-trivial volume) legitimately collapses to the
    # view program on every route.
    assert len(kinds) >= 2 or kinds == {"view"} or plan.layout.volume <= 2


@given(problems())
@settings(max_examples=40, deadline=None, derandomize=True)
def test_generated_nest_matches_numpy(problem):
    """The generated loop nest is bit-exact on arbitrary geometry, not
    just where the model deploys it: build the program straight from
    the search descriptor, ignoring the profitability verdict."""
    dims, perm, dtype = problem
    in_shape = dims[::-1]
    axes = Permutation(perm).numpy_axes()
    desc = search_nest(in_shape, axes, np.dtype(dtype).itemsize)
    program = NestProgram(desc)
    src = _source(program.volume, dtype, seed=13)
    ref = _np_reference(src, dims, perm)
    _check_all_surfaces(program, src, ref, dims, perm)


@given(problems())
@settings(max_examples=30, deadline=None, derandomize=True)
def test_search_is_deterministic(problem):
    dims, perm, dtype = problem
    in_shape = dims[::-1]
    axes = Permutation(perm).numpy_axes()
    eb = np.dtype(dtype).itemsize
    a, b = search_nest(in_shape, axes, eb), search_nest(in_shape, axes, eb)
    a.pop("search_ms"), b.pop("search_ms")
    assert a == b
