"""Schema taxonomy (Alg. 1 / Fig. 3).

Given a (fused) transposition, decide which of the four data-movement
schemas applies:

- ``FVI_MATCH_LARGE``  — matching fastest-varying index, extent >= warp
  size: direct register copy (Alg. 7).
- ``FVI_MATCH_SMALL``  — matching FVI, extent < warp size but the two
  fastest input *and* output extents each combine past the warp size:
  blocked shared-memory staging (Alg. 6).
- ``ORTHOGONAL_DISTINCT`` — the combined input-FVI group and combined
  output-FVI group are disjoint: generalized 32x33 tile transpose
  (Alg. 2).
- ``ORTHOGONAL_ARBITRARY`` — everything else: whole-slice staging with
  indirection arrays (Alg. 5).

Following the paper, the FVI-match-small vs orthogonal-arbitrary
borderline (Fig. 3's "Alg 4 or Alg 6" box) is resolved by the
performance model at planning time; :func:`select_schema` reports both
candidates via :attr:`TaxonomyDecision.alternatives`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Set, Tuple

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation

#: Warp size used as the combining threshold B in Alg. 1.
DEFAULT_REQUIRED_SLICE = 32


class Schema(enum.Enum):
    """The four TTLG data-movement schemas plus the naive strawman."""

    FVI_MATCH_LARGE = "fvi-match-large"
    FVI_MATCH_SMALL = "fvi-match-small"
    ORTHOGONAL_DISTINCT = "orthogonal-distinct"
    ORTHOGONAL_ARBITRARY = "orthogonal-arbitrary"
    NAIVE = "naive"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TaxonomyDecision:
    """Outcome of Alg. 1 with enough context for diagnostics.

    Attributes
    ----------
    schema:
        The primary schema chosen by the flow chart.
    alternatives:
        Schemas the performance model is allowed to compare against the
        primary (Fig. 3's model-resolved boxes).
    input_group / output_group:
        The combined FVI index sets I and O of Alg. 1 (input dim ids).
    input_group_volume / output_group_volume:
        Their combined extents (Alg. 1's ``Ivol`` / ``Ovol``).
    """

    schema: Schema
    alternatives: Tuple[Schema, ...]
    input_group: Tuple[int, ...]
    output_group: Tuple[int, ...]
    input_group_volume: int
    output_group_volume: int

    @property
    def all_candidates(self) -> Tuple[Schema, ...]:
        return (self.schema, *self.alternatives)


def combined_fvi_group(
    dims: Tuple[int, ...], order: Tuple[int, ...], required: int
) -> Tuple[Tuple[int, ...], int]:
    """Alg. 1 lines 2-7: take dims in ``order`` until volume >= required.

    Returns the selected dim ids and their combined volume.  If the whole
    tensor is smaller than ``required`` the group is all dimensions.
    """
    group = []
    vol = 1
    for j in order:
        if vol >= required:
            break
        group.append(j)
        vol *= dims[j]
    return tuple(group), vol


def select_schema(
    layout: TensorLayout,
    perm: Permutation,
    required_slice: int = DEFAULT_REQUIRED_SLICE,
    warp_size: int = 32,
) -> TaxonomyDecision:
    """Run Alg. 1 on an (already fused) transposition.

    The caller is expected to fuse first (``repro.core.fusion``); passing
    an unfused problem is legal but may misclassify borderline cases the
    same way the paper's flow chart would before its fusion step.
    """
    dims = layout.dims
    # I: input dims combined from the input FVI; O: from the output FVI,
    # expressed as input dim ids (o_i = perm[i]).
    in_group, ivol = combined_fvi_group(
        dims, tuple(range(layout.rank)), required_slice
    )
    out_group, ovol = combined_fvi_group(dims, perm.mapping, required_slice)

    iset: Set[int] = set(in_group)
    oset: Set[int] = set(out_group)

    if perm.is_identity():
        # Pure copy; FVI-Match-Large handles it with zero overhead.
        return TaxonomyDecision(
            schema=Schema.FVI_MATCH_LARGE,
            alternatives=(),
            input_group=in_group,
            output_group=out_group,
            input_group_volume=ivol,
            output_group_volume=ovol,
        )

    if not iset & oset:
        schema = Schema.ORTHOGONAL_DISTINCT
        alternatives: Tuple[Schema, ...] = (Schema.ORTHOGONAL_ARBITRARY,)
    elif perm.fvi_matches():
        n0 = dims[0]
        if n0 >= warp_size:
            schema = Schema.FVI_MATCH_LARGE
            # Refinement over the paper's flow chart: when the matching
            # FVI run is not transaction-aligned (n0 not a multiple of
            # the warp size), a staged kernel that extends the output
            # runs can beat the direct copy; let the model decide.
            alternatives = (
                () if n0 % warp_size == 0 else (Schema.ORTHOGONAL_ARBITRARY,)
            )
        elif (
            layout.rank >= 2
            and perm.rank >= 2
            and n0 * dims[1] >= warp_size
            and dims[perm[0]] * dims[perm[1]] >= warp_size
        ):
            schema = Schema.FVI_MATCH_SMALL
            alternatives = (Schema.ORTHOGONAL_ARBITRARY,)
        else:
            # Fig. 3: "Alg 4 or Alg 6 (based on performance prediction)".
            schema = Schema.ORTHOGONAL_ARBITRARY
            alternatives = (Schema.FVI_MATCH_SMALL,) if layout.rank >= 2 else ()
    else:
        # Non-matching FVI with overlapping warp-sized groups: the
        # Orthogonal-Arbitrary kernel is the primary, but Alg. 3 may still
        # find a *smaller* disjoint grouping that makes Orthogonal-Distinct
        # competitive (the paper's 27^5 / perm 4 1 2 0 3 example), so the
        # model compares both.
        schema = Schema.ORTHOGONAL_ARBITRARY
        alternatives = (Schema.ORTHOGONAL_DISTINCT,)

    return TaxonomyDecision(
        schema=schema,
        alternatives=alternatives,
        input_group=in_group,
        output_group=out_group,
        input_group_volume=ivol,
        output_group_volume=ovol,
    )
