"""Tests for the profiler view (repro.gpusim.profile) and OA padding."""

import subprocess
import sys

import numpy as np
import pytest

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.plan import make_plan
from repro.gpusim.engine import simulate_warp_accesses
from repro.gpusim.profile import profile_kernel
from repro.gpusim.spec import KEPLER_K40C
from repro.kernels.common import reference_transpose
from repro.kernels.orthogonal_arbitrary import OrthogonalArbitraryKernel
from repro.kernels.orthogonal_distinct import OrthogonalDistinctKernel
from repro.model.pretrained import oracle_predictor

ORACLE = oracle_predictor()


class TestProfile:
    @pytest.fixture(scope="class")
    def prof(self):
        plan = make_plan((16,) * 6, (5, 4, 3, 2, 1, 0), predictor=ORACLE)
        return profile_kernel(plan.kernel)

    def test_efficiencies_in_range(self, prof):
        assert 0.0 < prof.gld_efficiency <= 1.0
        assert 0.0 < prof.gst_efficiency <= 1.0
        assert 0.0 < prof.warp_execution_efficiency <= 1.0
        assert 0.0 <= prof.tex_hit_rate <= 1.0

    def test_aligned_case_full_efficiency(self, prof):
        """16-extent doubles: every transaction fully useful."""
        assert prof.gld_efficiency == pytest.approx(1.0)
        assert prof.gst_efficiency == pytest.approx(1.0)

    def test_report_mentions_key_sections(self, prof):
        text = prof.format_report()
        for needle in (
            "occupancy",
            "dram transactions",
            "bound resource",
            "GB/s",
        ):
            assert needle in text

    def test_bound_resource_is_dram_for_big_transpose(self, prof):
        assert prof.breakdown.bound_resource == "dram"

    def test_misaligned_case_lower_efficiency(self):
        k = OrthogonalDistinctKernel(
            TensorLayout((15, 15, 15, 15)), Permutation((3, 2, 1, 0)),
            1, 3, 1, 3,
        )
        p = profile_kernel(k)
        assert p.gld_efficiency < 1.0

    def test_conflicted_kernel_reports_rate(self):
        k = OrthogonalArbitraryKernel(
            TensorLayout((32, 32, 16)), Permutation((1, 0, 2)),
            1, 1, 1, 1, pad=0,
        )
        assert profile_kernel(k).bank_conflict_rate > 1.0

    def test_cli_profile(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "profile", "16,16,16", "2,1,0"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "bound resource" in proc.stdout


class TestOrthogonalArbitraryPadding:
    def make(self, pad):
        return OrthogonalArbitraryKernel(
            TensorLayout((32, 32, 16)), Permutation((1, 0, 2)),
            1, 1, 1, 1, pad=pad,
        )

    def test_auto_pad_removes_conflicts(self):
        assert self.make(0).smem_read_conflict_degree() == 32.0
        assert self.make("auto").smem_read_conflict_degree() == 1.0

    def test_padded_execution_still_correct(self, rng):
        k = self.make("auto")
        src = rng.standard_normal(k.volume)
        ref = reference_transpose(src, k.layout, k.perm)
        np.testing.assert_array_equal(k.execute(src), ref)

    def test_padded_counters_match_replay(self):
        for pad in (0, "auto"):
            k = self.make(pad)
            ana = k.counters()
            det = simulate_warp_accesses(
                k.trace(), KEPLER_K40C, k.tex_array_bytes(),
                line_cache_capacity=4096,
            )
            assert ana.smem_conflict_cycles == det.smem_conflict_cycles

    def test_pad_increases_smem_footprint(self):
        k = self.make("auto")
        assert k.pad >= 1
        assert (
            k.launch_geometry.shared_mem_per_block
            == (k.A + k.pad) * k.B * 8
        )

    def test_negative_pad_rejected(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            self.make(-1)

    def test_auto_pad_never_faster_unpadded(self):
        assert (
            self.make("auto").simulated_time()
            <= self.make(0).simulated_time()
        )

    def test_planner_enumeration_uses_auto_pad(self):
        """TTLG's enumeration must produce padded OA candidates where a
        row-pitch pad actually removes conflicts (multi-row buffers with
        a conflicting column gather)."""
        from repro.core.slices import enumerate_orthogonal_arbitrary
        from repro.gpusim.spec import KEPLER_K40C

        ks = enumerate_orthogonal_arbitrary(
            TensorLayout((32, 32, 16)), Permutation((1, 0, 2)), KEPLER_K40C
        )
        padded = [k for k in ks if k.pad > 0 and k.B > 1]
        assert padded, "expected at least one auto-padded candidate"
        for k in padded:
            assert k.smem_read_conflict_degree() <= (
                OrthogonalArbitraryKernel(
                    k.layout, k.perm, k.in_prefix, k.blockA,
                    k.out_prefix, k.blockB, pad=0,
                ).smem_read_conflict_degree()
            )
