"""Slice-size and blocking-factor search (Alg. 3).

For the Orthogonal-Distinct and Orthogonal-Arbitrary kernels the combined
input-group volume ``A`` and output-group volume ``B`` are free
parameters.  Alg. 3 enumerates targets ``limit_a``/``limit_b`` in warp
multiples, derives the minimal prefix+block that reaches each target, and
keeps the configuration with the best *predicted* time.

The enumeration deduplicates derived ``(in_prefix, blockA, out_prefix,
blockB)`` tuples — many warp-multiple targets collapse to the same
configuration (for the paper's 27^5 example this yields the ~31 slice
variants of Fig. 5).

The upper bound on slice volume keeps the grid "overbooked": at least
``overbooking_factor`` times the number of thread blocks that can be
resident on the whole device, so SMs never starve (the paper determined
the factor empirically).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.errors import PlanError, SchemaError
from repro.gpusim.spec import DeviceSpec
from repro.kernels.base import TransposeKernel
from repro.kernels.orthogonal_arbitrary import OrthogonalArbitraryKernel
from repro.kernels.orthogonal_distinct import OrthogonalDistinctKernel
from repro.kernels.orthogonal_distinct import PAD, TILE

#: The paper's empirical grid-overbooking multiplier.
DEFAULT_OVERBOOKING = 4

#: A predictor maps a candidate kernel to an estimated time in seconds.
Predictor = Callable[[TransposeKernel], float]


@dataclass(frozen=True)
class GroupChoice:
    """One derived side of a slice: prefix dims + block on the next."""

    prefix: int
    block: int
    size: int  # combined extent


def derive_group(
    extents: Sequence[int], limit: int
) -> Optional[GroupChoice]:
    """Alg. 3 lines 8-12/13-18: smallest prefix+block reaching ``limit``.

    ``extents`` are the candidate dims' extents in combining order
    (input order for the input side, output order for the output side).
    Returns ``None`` when the whole tensor is smaller than ``limit``.
    """
    if limit <= 0:
        raise ValueError(f"limit must be positive, got {limit}")
    vol = 1
    for k, e in enumerate(extents):
        if vol * e >= limit:
            block = math.ceil(limit / vol)
            return GroupChoice(prefix=k, block=block, size=vol * block)
        vol *= e
    return None


def max_slice_volume(
    layout: TensorLayout,
    spec: DeviceSpec,
    smem_per_block: int,
    overbooking: int = DEFAULT_OVERBOOKING,
) -> int:
    """Upper bound on per-block slice volume for grid overbooking.

    ``volume / slice_vol`` thread blocks must be at least ``overbooking``
    times the device's resident-block capacity (Alg. 3's ``maxlimit``).
    """
    resident_per_sm = max(1, spec.shared_mem_per_sm // max(smem_per_block, 1))
    resident_per_sm = min(resident_per_sm, spec.max_blocks_per_sm)
    min_num_blocks = spec.num_sms * resident_per_sm
    cap = layout.volume // max(overbooking * min_num_blocks, 1)
    return max(cap, spec.warp_size * spec.warp_size)


# ----------------------------------------------------------------------
# Orthogonal-Distinct enumeration
# ----------------------------------------------------------------------


def distinct_groups(
    extents: Sequence[int], ws: int, cap: int
) -> List[GroupChoice]:
    """All distinct groups derivable from warp-multiple targets.

    Equivalent to running :func:`derive_group` for every ``limit`` in
    ``ws, 2*ws, ...`` up to ``cap`` and deduplicating — the paper's two
    outer loops — but generated directly.
    """
    groups: List[GroupChoice] = []
    seen = set()
    # Pure-prefix groups *below* the warp-size target: when every
    # warp-sized grouping overlaps the other side, Alg. 3 settles for a
    # smaller disjoint group (the paper's 27^5 example has output slice
    # 27 < 32).  Prefixes at or above the warp size arise from the
    # derivation loop below (full-extent blocks normalize into prefixes).
    vol = 1
    for k, e in enumerate(extents):
        vol *= e
        if vol >= ws or vol > cap:
            break
        seen.add((k + 1, 1))
        groups.append(GroupChoice(prefix=k + 1, block=1, size=vol))
    limit = ws
    while limit <= cap:
        g = derive_group(extents, limit)
        if g is None:
            break
        candidates = [g]
        # Also consider the largest block *below* the derived one whose
        # size still clears the previous warp multiple — e.g. for extents
        # 27^5 and limit 192 the derived block is 8 (A = 216) but block 7
        # (A = 189 >= 176) is admissible and is the paper's Fig. 5 best.
        if g.block > 1:
            prev = GroupChoice(
                prefix=g.prefix,
                block=g.block - 1,
                size=g.size // g.block * (g.block - 1),
            )
            if prev.size >= ws:
                candidates.append(prev)
        for cand in candidates:
            key = (cand.prefix, cand.block)
            if key not in seen and cand.size <= max(cap, ws):
                seen.add(key)
                groups.append(cand)
        # Jump to the next limit that changes the derived group: the
        # smallest warp multiple exceeding the current derived size.
        limit = max(limit + ws, (g.size // ws + 1) * ws)
    return groups


def enumerate_orthogonal_distinct(
    layout: TensorLayout,
    perm: Permutation,
    spec: DeviceSpec,
    elem_bytes: int = 8,
    overbooking: int = DEFAULT_OVERBOOKING,
    max_configs: int = 256,
) -> List[OrthogonalDistinctKernel]:
    """All admissible OD slice configurations (deduplicated)."""
    ws = spec.warp_size
    smem = TILE * (TILE + PAD) * elem_bytes
    cap = max_slice_volume(layout, spec, smem, overbooking)
    out_extents = [layout.dims[d] for d in perm.mapping]
    kernels: List[OrthogonalDistinctKernel] = []
    for ga in distinct_groups(layout.dims, ws, cap):
        for gb in distinct_groups(out_extents, ws, max(cap // ga.size, ws)):
            if ga.size * gb.size > cap:
                break
            if len(kernels) >= max_configs:
                return kernels
            try:
                kernels.append(
                    OrthogonalDistinctKernel(
                        layout,
                        perm,
                        in_prefix=ga.prefix,
                        blockA=ga.block,
                        out_prefix=gb.prefix,
                        blockB=gb.block,
                        elem_bytes=elem_bytes,
                        spec=spec,
                    )
                )
            except SchemaError:
                pass  # overlapping groups — skip this combination
    return kernels


# ----------------------------------------------------------------------
# Orthogonal-Arbitrary enumeration
# ----------------------------------------------------------------------


def enumerate_orthogonal_arbitrary(
    layout: TensorLayout,
    perm: Permutation,
    spec: DeviceSpec,
    elem_bytes: int = 8,
    max_configs: int = 128,
) -> List[OrthogonalArbitraryKernel]:
    """All admissible OA slice configurations.

    The buffer holds the whole ``A x B`` slice, so admissibility is
    bounded by shared memory (the paper trained on ~10x fewer OA
    configurations for exactly this reason).
    """
    ws = spec.warp_size
    smem_words = spec.shared_mem_per_sm // elem_bytes
    out_extents = [layout.dims[d] for d in perm.mapping]
    kernels: List[OrthogonalArbitraryKernel] = []
    seen = set()
    # The empty output group (B = 1) matters when the input group itself
    # covers the output-fastest dims (e.g. a 16 x N matrix transpose
    # where blocking the slow dim makes both sides coalesced).
    empty_out = GroupChoice(prefix=0, block=1, size=1)
    for ga in distinct_groups(layout.dims, ws, smem_words):
        for gb in [empty_out] + distinct_groups(
            out_extents, ws, max(smem_words // ga.size, ws)
        ):
            if ga.size * gb.size > smem_words:
                break
            if len(kernels) >= max_configs:
                return kernels
            try:
                # pad="auto": TTLG's Sec. IV specialization — stagger the
                # buffer pitch when the gather pattern conflicts.
                k = OrthogonalArbitraryKernel(
                    layout,
                    perm,
                    in_prefix=ga.prefix,
                    blockA=ga.block,
                    out_prefix=gb.prefix,
                    blockB=gb.block,
                    elem_bytes=elem_bytes,
                    spec=spec,
                    pad="auto",
                )
            except SchemaError:
                continue  # infeasible combination (smem, empty group, ...)
            # Kernel construction normalizes parameters (full-extent and
            # input-covered blocks); dedupe on the normalized identity.
            key = (k.in_prefix, k.blockA, k.out_prefix, k.blockB, k.b_dim)
            if key not in seen:
                seen.add(key)
                kernels.append(k)
    return kernels


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SliceSearchResult:
    kernel: TransposeKernel
    predicted_time: float
    num_candidates: int


def choose_best(
    candidates: Sequence[TransposeKernel], predictor: Predictor
) -> SliceSearchResult:
    """Alg. 3's selection loop: keep the best predicted candidate."""
    if not candidates:
        raise PlanError("no admissible slice configuration")
    best, best_t = None, math.inf
    for k in candidates:
        t = predictor(k)
        if t < best_t:
            best, best_t = k, t
    assert best is not None
    return SliceSearchResult(
        kernel=best, predicted_time=best_t, num_candidates=len(candidates)
    )
