"""The measurement loop: refined codegen configs + retrained cost model.

Two halves, both gated:

**measured codegen refinement** — for each 64 MiB case the analytic
loop-nest search keeps its top-K configurations and a short timed
micro-probe on this host picks the winner
(:func:`repro.kernels.codegen.refine_descriptor`).  Gates: the refined
config is never slower than the analytic winner (warm, interleaved,
within noise tolerance) and strictly faster on at least one case — the
analytic DRAM model ranks by traffic alone, and real hosts disagree
with it on loop order.  The refined descriptor persists as a plan-store
artifact, so a **warm restart** recompiles every case with ZERO
loop-order searches and ZERO probes (counters asserted).

**shadow-gated retraining** — a :class:`~repro.runtime.service
.TransposeService` with ``feedback=True`` replays a mixed workload:
executions feed the per-schema sample reservoirs, ``retrain_model``
fits a candidate GP on the measured wall times, and further replayed
traffic shadow-scores candidate vs incumbent.  Gates: the retrained
model's predicted-vs-measured error is below the offline model's (the
offline fit targets *simulated GPU* time and cannot predict host wall
time), and the promotion actually flips — i.e. the gate observed the
win before planning switched models.

Run directly::

    PYTHONPATH=src python benchmarks/bench_model_feedback.py

writes ``results/model_feedback.json``.  CI runs ``--smoke``: ~8 MiB
operands, fewer probe reps, gating only the deterministic invariants
(refined-descriptor shape, zero-search/zero-probe warm restart, the
feedback error reduction — whose margin is orders of magnitude, not a
timing race).
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from conftest import bench_parser, env_stamp, gate, interleaved_ms, pick_repeats
from repro.core.plan import make_plan
from repro.kernels import codegen as cg
from repro.kernels.executor import clear_exec_caches, compile_executor
from repro.runtime.service import TransposeService
from repro.runtime.store import PlanStore

RESULTS_PATH = (
    Path(__file__).resolve().parent.parent / "results" / "model_feedback.json"
)

#: name -> (full dims, smoke dims, perm).  All f64; full cases are
#: 64 MiB, smoke ~8 MiB (still above the nest-profitability floor).
CASES = {
    "od-reverse-64MiB": ((128, 64, 32, 32), (64, 32, 16, 16), (3, 2, 1, 0)),
    "oa-partial-64MiB": ((32, 64, 64, 64), (16, 32, 32, 32), (1, 0, 3, 2)),
    "od-rotate-64MiB": ((64, 64, 64, 32), (32, 32, 32, 16), (2, 3, 0, 1)),
}

#: Candidates the analytic search keeps for the micro-probe.
REFINE_K = 8

#: Full-mode noise tolerance on "refined never slower than analytic".
NEVER_SLOWER_TOL = 1.10

#: "Strictly faster" margin for the >= 1 case gate.
STRICT_MARGIN = 0.98

#: Feedback-replay problems (small on purpose — the gate is about
#: prediction error, not throughput) and traffic volume per stage.
REPLAY_PROBLEMS = [
    ((24, 24, 24, 24), (3, 2, 1, 0)),
    ((32, 16, 32, 16), (1, 0, 3, 2)),
    ((16, 48, 16, 24), (2, 3, 0, 1)),
]
REPLAY_WARMUP = 36
REPLAY_SHADOW = 54


def bench_refinement(dims, perm, repeats, reps):
    """Analytic winner vs measured-refined config for one case."""
    analytic = cg.search_nest(dims, perm, 8, top_k=REFINE_K)
    assert analytic["profitable"], f"{dims}/{perm}: search not profitable"
    refined = cg.refine_descriptor(analytic, reps=reps)
    assert refined.get("refined"), "refine_descriptor left no annotation"
    probe = refined["probe"]

    base = {k: v for k, v in analytic.items() if k != "candidates"}
    prog_a = cg.NestProgram(base)
    prog_r = cg.NestProgram({k: v for k, v in refined.items() if k != "probe"})

    volume = int(np.prod(dims))
    src = np.random.default_rng(11).standard_normal(volume)
    ref = prog_a.run(src)
    assert np.array_equal(prog_r.run(src), ref), "refined config parity"

    out_a, out_r = np.empty(volume), np.empty(volume)
    prog_a.run(src, out=out_a)  # warm both before interleaving
    prog_r.run(src, out=out_r)
    timed = interleaved_ms(
        {
            "analytic": lambda: prog_a.run(src, out=out_a),
            "refined": lambda: prog_r.run(src, out=out_r),
        },
        repeats,
    )
    analytic_ms, _ = timed["analytic"]
    refined_ms, _ = timed["refined"]
    probe_ms = probe["measured_ms"]
    return {
        "probe_speedup": round(probe_ms[0] / probe_ms[probe["picked"]], 3),
        "dims": list(dims),
        "perm": list(perm),
        "payload_mib": round(volume * 8 / (1 << 20), 1),
        "candidates": len(analytic["candidates"]),
        "picked": probe["picked"],
        "switched": probe["picked"] != 0,
        "probe_ms": round(probe["probe_ms"], 2),
        "analytic_tiles": list(analytic["tiles"]),
        "refined_tiles": list(refined["tiles"]),
        "analytic_ms": round(analytic_ms, 3),
        "refined_ms": round(refined_ms, 3),
        "speedup": round(analytic_ms / refined_ms, 3),
    }


def bench_warm_restart(state_dir, case_dims, reps):
    """A restarted process must reuse every refined descriptor."""
    clear_exec_caches()
    cg.reset_codegen_stats()
    store = PlanStore(state_dir / "plans.json")
    try:
        for dims, perm in case_dims:
            plan = make_plan(dims, perm)
            program = compile_executor(
                plan.kernel,
                lowering=False,
                codegen=True,
                artifacts=store,
                refine=REFINE_K,
            )
            assert program.kind == "nest", "warm rebuild fell back"
            assert program.descriptor.get("refined"), (
                "warm rebuild lost the refined descriptor"
            )
    finally:
        store.close()
    return cg.codegen_stats()


def bench_feedback(smoke):
    """Replay traffic, retrain, shadow-score, and read the verdict."""
    state_dir = Path(tempfile.mkdtemp(prefix="repro-feedback-bench-"))
    rng = np.random.default_rng(7)
    payloads = {
        dims: rng.standard_normal(int(np.prod(dims)))
        for dims, _ in REPLAY_PROBLEMS
    }
    try:
        with TransposeService(
            store_path=state_dir / "plans.json",
            feedback=True,
            shadow_fraction=1.0,
            num_streams=2,
        ) as svc:
            t0 = time.perf_counter()
            for i in range(REPLAY_WARMUP):
                dims, perm = REPLAY_PROBLEMS[i % len(REPLAY_PROBLEMS)]
                svc.execute(dims, perm, 8, payloads[dims]).release()
            version = svc.retrain_model()
            assert version is not None, "retrain found no trainable schema"
            for i in range(REPLAY_SHADOW):
                dims, perm = REPLAY_PROBLEMS[i % len(REPLAY_PROBLEMS)]
                svc.execute(dims, perm, 8, payloads[dims]).release()
            replay_s = time.perf_counter() - t0
            stats = svc.stats()["model"]
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)
    versions = stats["versions"]
    offline_err = versions["offline"]["mean_err_pct"]
    trained_err = versions[version]["mean_err_pct"]
    return {
        "retrained_version": version,
        "active": stats["active"],
        "promotions": stats["promotions"],
        "observed": stats["observed"],
        "replay_s": round(replay_s, 3),
        "offline_err_pct": offline_err,
        "trained_err_pct": trained_err,
        "trained_shadow_n": versions[version]["shadow_count"],
    }


def main(argv=None):
    ap = bench_parser(__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, default=RESULTS_PATH)
    args = ap.parse_args(argv)
    repeats = pick_repeats(args, full=7, smoke=2)
    probe_reps = 2 if args.smoke else 4

    failures = []

    # ---- measured codegen refinement ---------------------------------
    refine_results = {}
    case_dims = []
    for name, (full_dims, smoke_dims, perm) in CASES.items():
        dims = smoke_dims if args.smoke else full_dims
        case_dims.append((dims, perm))
        refine_results[name] = bench_refinement(dims, perm, repeats, probe_reps)

    # Persist the refined descriptors the way the scheduler does, then
    # assert the warm restart replays them without search or probe.
    state_dir = Path(tempfile.mkdtemp(prefix="repro-refine-bench-"))
    try:
        cg.reset_codegen_stats()
        store = PlanStore(state_dir / "plans.json")
        for dims, perm in case_dims:
            plan = make_plan(dims, perm)
            compile_executor(
                plan.kernel,
                lowering=False,
                codegen=True,
                artifacts=store,
                refine=REFINE_K,
            )
        cold = cg.codegen_stats()
        store.close()
        warm = bench_warm_restart(state_dir, case_dims, probe_reps)
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)

    if cold["refinements"] != len(CASES):
        failures.append(
            f"cold pass probed {cold['refinements']} cases, "
            f"expected {len(CASES)}"
        )
    if warm["searches"] != 0 or warm["refinements"] != 0:
        failures.append(
            f"warm restart re-ran {warm['searches']} searches / "
            f"{warm['refinements']} probes (expected 0 / 0)"
        )
    if warm["artifact_hits"] != len(CASES):
        failures.append(
            f"warm restart hit {warm['artifact_hits']} artifacts for "
            f"{len(CASES)} cases"
        )

    # ---- shadow-gated retraining -------------------------------------
    feedback = bench_feedback(args.smoke)
    if feedback["trained_err_pct"] >= feedback["offline_err_pct"]:
        failures.append(
            f"retrained model error {feedback['trained_err_pct']}% did not "
            f"beat the offline model's {feedback['offline_err_pct']}% on "
            "replayed telemetry"
        )
    if feedback["promotions"] < 1 or feedback["active"] == "offline":
        failures.append(
            "shadow gate never promoted the retrained model "
            f"(active={feedback['active']}, "
            f"promotions={feedback['promotions']})"
        )

    print(
        f"{'case':<20s} {'MiB':>6s} {'analytic':>10s} {'refined':>9s} "
        f"{'speedup':>8s} {'picked':>7s} {'probe':>9s}"
    )
    for name, r in refine_results.items():
        print(
            f"{name:<20s} {r['payload_mib']:>6.1f} "
            f"{r['analytic_ms']:>8.2f}ms {r['refined_ms']:>7.2f}ms "
            f"{r['speedup']:>7.2f}x {r['picked']:>7d} "
            f"{r['probe_ms']:>7.1f}ms"
        )
    print(
        f"warm restart: {warm['searches']} searches, "
        f"{warm['refinements']} probes, {warm['artifact_hits']} artifact "
        f"hits, {warm['search_s_saved'] * 1e3:.1f} ms saved"
    )
    print(
        f"feedback: {feedback['retrained_version']} trained on "
        f"{feedback['observed']} observations -> "
        f"{feedback['trained_err_pct']}% error vs offline "
        f"{feedback['offline_err_pct']}% "
        f"(active={feedback['active']}, "
        f"promotions={feedback['promotions']})"
    )

    if args.smoke:
        # Timing comparisons need a quiet host; smoke gates only the
        # deterministic invariants asserted above plus the feedback
        # error reduction, whose margin is not a timing race.
        return gate("MODEL FEEDBACK SMOKE REGRESSION", failures, smoke=True)

    failures += [
        f"{name}: refined config {r['refined_ms']:.2f} ms slower than "
        f"analytic winner {r['analytic_ms']:.2f} ms (tol "
        f"{NEVER_SLOWER_TOL}x)"
        for name, r in refine_results.items()
        if r["refined_ms"] > r["analytic_ms"] * NEVER_SLOWER_TOL
    ]
    # "Strictly faster somewhere": the independent re-measure OR the
    # probe's own interleaved best-of measurement counts — on a shared
    # host the two races see different neighbor noise, and either one
    # is a real measurement of the exact configs on this machine.
    if not any(
        r["refined_ms"] < r["analytic_ms"] * STRICT_MARGIN
        or (r["switched"] and r["probe_speedup"] > 1.0 / STRICT_MARGIN)
        for r in refine_results.values()
    ):
        failures.append(
            "no 64 MiB case where the measured refinement strictly beat "
            "the analytic winner"
        )

    summary = {
        "env": env_stamp(True),
        "repeats": repeats,
        "probe_reps": probe_reps,
        "refine_k": REFINE_K,
        "never_slower_tol": NEVER_SLOWER_TOL,
        "compile_backend": cg.compile_backend(),
        "cache_budget_bytes": cg.CACHE_BUDGET_BYTES,
        "refinement": refine_results,
        "warm_restart": {
            "searches": warm["searches"],
            "refinements": warm["refinements"],
            "artifact_hits": warm["artifact_hits"],
            "search_ms_saved": round(warm["search_s_saved"] * 1e3, 3),
        },
        "feedback": feedback,
    }
    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {args.out}")
    return gate("ACCEPTANCE THRESHOLDS NOT MET", failures)


if __name__ == "__main__":
    sys.exit(main())
