"""The measurement loop: reservoirs, GP model, shadow-gated retraining.

Contract under test (``docs/model.md``): executed plans sample into
bounded per-schema reservoirs; the GP fits measured wall times and
reports calibrated uncertainty; retraining produces a *candidate*
version that steers nothing until the shadow scoreboard shows it
out-predicting the incumbent on live traffic; and the whole loop state
survives a restart (and arbitrary corruption of its file) next to the
plan store.
"""

import json

import numpy as np
import pytest

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.taxonomy import Schema
from repro.errors import ModelError
from repro.kernels.naive import NaiveKernel
from repro.kernels.orthogonal_distinct import OrthogonalDistinctKernel
from repro.model.feedback import (
    OFFLINE_VERSION,
    FeedbackLoop,
    FeedbackPredictor,
    collect_training_data,
    record_execution_sample,
    sample_name,
)
from repro.model.features import FEATURE_NAMES, feature_vector
from repro.model.gp import GPModel
from repro.runtime.metrics import MetricsRegistry, SampleReservoir


def od_kernel(dims=(64, 3, 64), perm=(2, 1, 0)):
    return OrthogonalDistinctKernel(
        TensorLayout(dims), Permutation(perm), 1, 1, 1, 1
    )


# ----------------------------------------------------------------------
# Sample reservoirs
# ----------------------------------------------------------------------


class TestReservoir:
    def test_keeps_everything_below_capacity(self):
        r = SampleReservoir("x", capacity=8)
        for i in range(8):
            assert r.offer(float(i), {"i": i})
        assert [v for v, _ in r.samples()] == [float(i) for i in range(8)]

    def test_bounded_and_uniformish(self):
        r = SampleReservoir("x", capacity=32)
        for i in range(10_000):
            r.offer(float(i))
        snap = r.snapshot()
        assert snap["kept"] == 32
        assert snap["offered"] == 10_000
        # Algorithm R keeps a uniform sample: the mean of the kept
        # values must land near the population mean, not near either
        # end (a fixed window would sit at ~5000 +- 16).
        assert 2000 < snap["mean"] < 8000

    def test_deterministic_per_name(self):
        a, b = SampleReservoir("same", 16), SampleReservoir("same", 16)
        for i in range(1000):
            a.offer(float(i))
            b.offer(float(i))
        assert [v for v, _ in a.samples()] == [v for v, _ in b.samples()]

    def test_meta_callable_lazy(self):
        calls = []
        r = SampleReservoir("x", capacity=1)
        r.offer(1.0, meta=lambda: calls.append(1) or {"n": 1})
        rejected = 0
        for i in range(500):
            if not r.offer(2.0, meta=lambda: calls.append(1) or {"n": 2}):
                rejected += 1
        # The meta thunk ran only for admitted offers.
        assert rejected > 0
        assert len(calls) == 501 - rejected

    def test_registry_observe_sample(self):
        m = MetricsRegistry(reservoir_capacity=4)
        for i in range(10):
            m.observe_sample("lat", float(i), meta={"i": i})
        snap = m.snapshot()["samples"]["lat"]
        assert snap["kept"] == 4 and snap["offered"] == 10
        assert m.reservoir_names() == ["lat"]
        m.reset()
        assert m.reservoir("lat") is None


# ----------------------------------------------------------------------
# Recording + collection
# ----------------------------------------------------------------------


class TestCollection:
    def test_record_and_collect(self):
        m = MetricsRegistry()
        k = od_kernel()
        assert record_execution_sample(m, k, 1e-3)
        data = collect_training_data(m)
        X, y = data[Schema.ORTHOGONAL_DISTINCT]
        assert X.shape == (1, len(FEATURE_NAMES[Schema.ORTHOGONAL_DISTINCT]))
        assert y[0] == 1e-3
        assert np.array_equal(X[0], feature_vector(k))

    def test_naive_schema_skipped(self):
        """Naive has no registered feature set; sampling it would KeyError
        at admission time deep inside the reservoir."""
        m = MetricsRegistry()
        nk = NaiveKernel(TensorLayout((4, 4)), Permutation((1, 0)))
        assert nk.schema not in FEATURE_NAMES
        assert not record_execution_sample(m, nk, 1e-3)
        assert m.reservoir(sample_name(nk.schema)) is None

    def test_degenerate_wall_time_skipped(self):
        m = MetricsRegistry()
        assert not record_execution_sample(m, od_kernel(), 0.0)
        assert not record_execution_sample(m, od_kernel(), -1.0)

    def test_collect_drops_wrong_arity_meta(self):
        m = MetricsRegistry()
        name = sample_name(Schema.ORTHOGONAL_DISTINCT)
        m.observe_sample(name, 1e-3, meta={"features": [1.0, 2.0]})  # stale
        record_execution_sample(m, od_kernel(), 2e-3)
        X, y = collect_training_data(m)[Schema.ORTHOGONAL_DISTINCT]
        assert X.shape[0] == 1 and y[0] == 2e-3


# ----------------------------------------------------------------------
# GP regression
# ----------------------------------------------------------------------


class TestGP:
    def _data(self, n=40, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.uniform(0.0, 4.0, size=(n, 2))
        y = np.sin(X[:, 0]) + 0.1 * X[:, 1] + 2.0
        return X, y

    def test_interpolates_training_set(self):
        X, y = self._data()
        gp = GPModel(["a", "b"], X, y, noise=1e-4)
        pred = gp.predict(X)
        assert np.allclose(pred, y, atol=0.05)

    def test_generalizes_nearby(self):
        X, y = self._data()
        gp = GPModel(["a", "b"], X, y)
        Xq, yq = self._data(n=20, seed=1)
        assert gp.precision_error_pct(Xq, yq) < 10.0

    def test_std_grows_away_from_data(self):
        X, y = self._data()
        gp = GPModel(["a", "b"], X, y)
        _, near = gp.predict_with_std(X[:1])
        _, far = gp.predict_with_std(np.array([[40.0, -40.0]]))
        assert far[0] > near[0] * 3

    def test_serialization_roundtrip(self):
        X, y = self._data()
        gp = GPModel(["a", "b"], X, y)
        clone = GPModel.from_dict(json.loads(json.dumps(gp.to_dict())))
        Xq = self._data(n=5, seed=2)[0]
        assert np.allclose(clone.predict(Xq), gp.predict(Xq))

    def test_thinning_caps_points(self):
        from repro.model.gp import MAX_GP_POINTS

        rng = np.random.default_rng(3)
        X = rng.uniform(size=(MAX_GP_POINTS + 200, 1))
        gp = GPModel(["a"], X, X[:, 0])
        assert gp.n_train <= MAX_GP_POINTS

    def test_validation(self):
        with pytest.raises(ModelError):
            GPModel(["a"], np.zeros((1, 1)), np.zeros(1))  # < 2 points
        with pytest.raises(ModelError):
            GPModel(["a", "b"], np.zeros((3, 1)), np.zeros(3))  # name arity
        with pytest.raises(ModelError):
            GPModel(["a"], np.zeros((3, 1)), np.zeros(3), noise=0.0)
        with pytest.raises(ModelError):
            GPModel.from_dict({"kind": "gp"})

    def test_constant_features_survive(self):
        X = np.array([[1.0, 5.0], [2.0, 5.0], [3.0, 5.0]])
        gp = GPModel(["a", "const"], X, np.array([1.0, 2.0, 3.0]))
        assert np.isfinite(gp.predict_one([2.5, 5.0]))


# ----------------------------------------------------------------------
# FeedbackPredictor
# ----------------------------------------------------------------------


class TestFeedbackPredictor:
    def test_prefers_fitted_model_for_analytic_schema(self):
        from repro.gpusim.cost import CostModel
        from repro.model.pretrained import ANALYTIC_SCHEMAS, SchemaPredictor

        schema = next(iter(ANALYTIC_SCHEMAS & set(FEATURE_NAMES)))
        names = FEATURE_NAMES[schema]
        rng = np.random.default_rng(0)
        X = rng.uniform(1.0, 2.0, size=(8, len(names)))
        gp = GPModel(names, X, np.full(8, 42.0))
        base = SchemaPredictor({schema: gp}, fallback=CostModel())
        fb = FeedbackPredictor({schema: gp}, fallback=CostModel())
        assert base._model_for(schema) is None  # analytic fallback wins
        assert fb._model_for(schema) is gp  # measured model wins


# ----------------------------------------------------------------------
# The loop: retrain, shadow, promote, persist
# ----------------------------------------------------------------------


def _fill_metrics(m, n=24, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        d = int(rng.choice([32, 48, 64, 96]))
        record_execution_sample(m, od_kernel((d, 3, d)), 1e-3 * d)


def _replay(loop, m, n=24, seed=1):
    """Feed observations whose wall time is exactly what the trained
    model saw: the GP should predict them almost perfectly."""
    rng = np.random.default_rng(seed)
    promoted = False
    for _ in range(n):
        d = int(rng.choice([32, 48, 64, 96]))
        promoted |= loop.observe(m, od_kernel((d, 3, d)), 1e-3 * d)
    return promoted


class TestFeedbackLoop:
    def test_retrain_produces_candidate_not_active(self, tmp_path):
        m = MetricsRegistry()
        _fill_metrics(m)
        loop = FeedbackLoop(tmp_path / "models.json", min_train_points=8)
        v = loop.retrain(m)
        assert v == "v1"
        assert loop.candidate_version == "v1"
        assert loop.active_version == OFFLINE_VERSION
        # Candidate steers nothing yet.
        assert loop.predictor() is loop.base_predictor

    def test_retrain_needs_enough_points(self):
        m = MetricsRegistry()
        _fill_metrics(m, n=3)
        loop = FeedbackLoop(min_train_points=8)
        assert loop.retrain(m) is None

    def test_promotion_requires_measured_win(self, tmp_path):
        m = MetricsRegistry()
        _fill_metrics(m)
        loop = FeedbackLoop(
            tmp_path / "models.json",
            shadow_fraction=1.0,
            min_shadow_samples=4,
            min_train_points=8,
        )
        loop.retrain(m)
        promoted = _replay(loop, m, n=12)
        assert promoted
        assert loop.active_version == "v1"
        assert loop.candidate_version is None
        assert loop.promotions == 1
        # The promoted predictor now drives planning and predicts wall
        # time (1 ms/extent), not the offline simulated-GPU time.
        pred = loop.predictor()(od_kernel((64, 3, 64)))
        assert pred == pytest.approx(64e-3, rel=0.2)

    def test_no_promotion_below_min_samples(self):
        m = MetricsRegistry()
        _fill_metrics(m)
        loop = FeedbackLoop(
            shadow_fraction=1.0, min_shadow_samples=100, min_train_points=8
        )
        loop.retrain(m)
        assert not _replay(loop, m, n=20)
        assert loop.active_version == OFFLINE_VERSION

    def test_shadow_fraction_zero_never_scores(self):
        m = MetricsRegistry()
        _fill_metrics(m)
        loop = FeedbackLoop(shadow_fraction=0.0, min_train_points=8)
        loop.retrain(m)
        assert not _replay(loop, m, n=20)
        assert loop.stats()["versions"][OFFLINE_VERSION]["shadow_count"] == 0

    def test_retrain_replaces_stale_candidate(self):
        m = MetricsRegistry()
        _fill_metrics(m)
        loop = FeedbackLoop(min_train_points=8)
        assert loop.retrain(m) == "v1"
        assert loop.retrain(m) == "v2"
        assert loop.candidate_version == "v2"
        assert "v1" not in loop.stats()["versions"]

    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "models.json"
        m = MetricsRegistry()
        _fill_metrics(m)
        loop = FeedbackLoop(
            path, shadow_fraction=1.0, min_shadow_samples=4,
            min_train_points=8,
        )
        loop.retrain(m)
        _replay(loop, m, n=12)
        loop.close()

        reborn = FeedbackLoop(path)
        assert reborn.active_version == "v1"
        assert reborn.promotions == 1
        assert reborn._next_version == 2
        pred = reborn.predictor()(od_kernel((48, 3, 48)))
        assert pred == pytest.approx(48e-3, rel=0.2)

    @pytest.mark.parametrize(
        "payload",
        [
            "{ not json",
            json.dumps({"feedback_version": 999}),
            json.dumps({"feedback_version": 1, "active": "v9", "models": {}}),
            json.dumps({"feedback_version": 1, "active": "offline",
                        "models": {"v1": {"orthogonal-distinct": {"kind": "?"}}},
                        "shadow": {}}),
            json.dumps({"feedback_version": 1})[:10],
        ],
    )
    def test_corrupt_file_starts_fresh(self, tmp_path, payload):
        path = tmp_path / "models.json"
        path.write_text(payload)
        loop = FeedbackLoop(path)
        assert loop.active_version == OFFLINE_VERSION
        assert loop.candidate_version is None

    def test_validates_shadow_fraction(self):
        with pytest.raises(ValueError):
            FeedbackLoop(shadow_fraction=1.5)


# ----------------------------------------------------------------------
# Service integration
# ----------------------------------------------------------------------


class TestServiceIntegration:
    DIMS, PERM = (16, 16, 16, 16), (3, 2, 1, 0)

    def test_service_records_and_retrains(self, tmp_path):
        from repro.runtime.service import TransposeService

        payload = np.arange(np.prod(self.DIMS), dtype=np.float64)
        with TransposeService(
            store_path=tmp_path / "plans.json",
            feedback=True,
            shadow_fraction=1.0,
            num_streams=2,
        ) as svc:
            for _ in range(10):
                svc.execute(self.DIMS, self.PERM, 8, payload)
            svc.drain()
            assert svc.retrain_model() == "v1"
            model = svc.stats()["model"]
            assert model["candidate"] == "v1"
            assert model["observed"] == 10
            assert model["versions"]["offline"]["shadow_count"] == 10
            samples = svc.metrics.snapshot()["samples"]
            assert sum(s["kept"] for s in samples.values()) == 10
        # The loop persisted next to the plan store.
        assert (tmp_path / "models.json").exists()

    def test_timing_only_submissions_not_sampled(self, tmp_path):
        from repro.runtime.service import TransposeService

        with TransposeService(
            store_path=tmp_path / "plans.json", feedback=True
        ) as svc:
            svc.execute(self.DIMS, self.PERM, 8)  # no payload
            svc.drain()
            assert svc.stats()["model"]["observed"] == 0

    def test_service_without_feedback(self, tmp_path):
        from repro.runtime.service import TransposeService

        with TransposeService(store_path=tmp_path / "plans.json") as svc:
            assert svc.stats()["model"] is None
            with pytest.raises(RuntimeError):
                svc.retrain_model()

    def test_explicit_predictor_never_overridden(self, tmp_path):
        from repro.runtime.service import TransposeService

        def sentinel(kernel):
            return 1.0

        with TransposeService(
            store_path=tmp_path / "plans.json",
            feedback=True,
            predictor=sentinel,
        ) as svc:
            assert svc._predictor is sentinel
            assert svc._user_predictor
