"""Network serving subsystem: the sharded asyncio front end.

The in-process :class:`~repro.runtime.service.TransposeService` behind
a real protocol: a compact length-prefixed codec over raw TCP
(:mod:`~repro.serving.codec`), plan-content-key routing through a
consistent-hash ring (:mod:`~repro.serving.ring`) so each replica's
bounded caches stay hot, admission control with per-tenant quotas and
typed load shedding (:mod:`~repro.serving.admission`), graceful drain,
and a pooled retrying client (:mod:`~repro.serving.client`).

See ``docs/serving.md`` for the wire protocol and semantics;
``benchmarks/bench_serving_load.py`` is the million-request load
generator that produces ``results/serving_load.json``.
"""

from __future__ import annotations

from repro.serving.admission import AdmissionController, TokenBucket
from repro.serving.client import ServingClient, exception_for
from repro.serving.codec import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameTooLargeError,
    decode,
    decode_frame,
    encode,
    pack_frame,
    read_frame,
)
from repro.serving.ring import HashRing
from repro.serving.server import PROTOCOL_VERSION, ServingServer, error_code_of

__all__ = [
    "ServingServer",
    "ServingClient",
    "HashRing",
    "AdmissionController",
    "TokenBucket",
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameTooLargeError",
    "encode",
    "decode",
    "pack_frame",
    "decode_frame",
    "read_frame",
    "error_code_of",
    "exception_for",
]
