"""Linearized tensor layouts.

A :class:`TensorLayout` is a tuple of extents plus the derived strides of
the canonical dense layout where **dimension 0 is fastest varying**:
``stride[0] = 1`` and ``stride[k] = prod(dims[:k])``.  The linear offset
of index tuple ``idx`` is ``sum(idx[k] * stride[k])``.

The output layout of a transposition by permutation ``p`` has extents
``p.apply(dims)`` and its own canonical strides; the element at input
index ``idx`` lands at output index ``p.apply(idx)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core.permutation import Permutation
from repro.errors import InvalidLayoutError


@dataclass(frozen=True)
class TensorLayout:
    """Extents + canonical dense strides of a linearized tensor."""

    dims: Tuple[int, ...]

    def __init__(self, dims: Sequence[int]):
        d = tuple(int(x) for x in dims)
        if len(d) == 0:
            raise InvalidLayoutError("tensor rank must be >= 1")
        if any(x <= 0 for x in d):
            raise InvalidLayoutError(f"extents must be positive, got {d}")
        object.__setattr__(self, "dims", d)

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def volume(self) -> int:
        return math.prod(self.dims)

    @property
    def strides(self) -> Tuple[int, ...]:
        out = []
        s = 1
        for d in self.dims:
            out.append(s)
            s *= d
        return tuple(out)

    def stride(self, k: int) -> int:
        """Stride of dimension ``k`` (elements)."""
        return math.prod(self.dims[:k])

    def nbytes(self, elem_bytes: int) -> int:
        return self.volume * elem_bytes

    # ------------------------------------------------------------------
    def linearize(self, idx: Sequence[int]) -> int:
        """Linear offset of one index tuple."""
        if len(idx) != self.rank:
            raise InvalidLayoutError(
                f"index of rank {len(idx)} does not match layout rank {self.rank}"
            )
        off = 0
        for i, (x, d, s) in enumerate(zip(idx, self.dims, self.strides)):
            if not 0 <= x < d:
                raise InvalidLayoutError(
                    f"index {x} out of range [0, {d}) in dimension {i}"
                )
            off += x * s
        return off

    def delinearize(self, offset: int) -> Tuple[int, ...]:
        """Index tuple of one linear offset."""
        if not 0 <= offset < self.volume:
            raise InvalidLayoutError(
                f"offset {offset} out of range [0, {self.volume})"
            )
        idx = []
        for d in self.dims:
            idx.append(offset % d)
            offset //= d
        return tuple(idx)

    def linearize_many(self, idx: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`linearize`; ``idx`` has shape ``(n, rank)``."""
        idx = np.asarray(idx, dtype=np.int64)
        strides = np.asarray(self.strides, dtype=np.int64)
        return idx @ strides

    def delinearize_many(self, offsets: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`delinearize`; returns shape ``(n, rank)``."""
        offsets = np.asarray(offsets, dtype=np.int64)
        out = np.empty((offsets.size, self.rank), dtype=np.int64)
        rem = offsets.copy()
        for k, d in enumerate(self.dims):
            out[:, k] = rem % d
            rem //= d
        return out

    # ------------------------------------------------------------------
    def permuted(self, perm: Permutation) -> "TensorLayout":
        """Layout of the transposition output (extents permuted)."""
        return TensorLayout(perm.apply(self.dims))

    def prefix_volume(self, k: int) -> int:
        """Product of the ``k`` fastest-varying extents."""
        return math.prod(self.dims[:k])

    def as_numpy_shape(self) -> Tuple[int, ...]:
        """Shape for a NumPy array holding this tensor (NumPy's last axis
        is fastest varying, so the extent order is reversed)."""
        return self.dims[::-1]

    def __repr__(self) -> str:
        return f"TensorLayout(dims={self.dims})"
