"""Plan caching for the repeated-use scenario.

cuTT exposes plan handles the caller stores; TTC bakes plans into
generated code.  For a library-level ergonomic equivalent, this module
keeps a bounded LRU of :class:`~repro.core.plan.TransposePlan` keyed by
``(dims, perm, elem_bytes, device)`` so hot call sites pay the planning
cost once per process.

The device component of the key is the spec *name plus a content
fingerprint* of every :class:`DeviceSpec` field: two specs that share a
name but differ in geometry (a common ablation pattern via
``with_overrides``) can never alias in the cache.

A cache can be backed by a persistent store (see
:class:`repro.runtime.store.PlanStore`) that is consulted on memory
misses and written through on plan builds, and can report events
(``hit``/``miss``/``restore``/``build``/``eviction``) to an observer —
the runtime's metrics registry.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import asdict, dataclass
from functools import lru_cache
from threading import Lock
from typing import Callable, Optional, Sequence

from repro.core.plan import Predictor, TransposePlan, make_plan
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec

DEFAULT_CAPACITY = 256


@lru_cache(maxsize=128)
def spec_fingerprint(spec: DeviceSpec) -> str:
    """Short content hash over *all* fields of a :class:`DeviceSpec`.

    Cached per spec instance (specs are frozen dataclasses); the digest
    covers geometry and calibration constants alike, so any override
    produces a distinct fingerprint even under an unchanged name.
    """
    payload = json.dumps(asdict(spec), sort_keys=True, default=str)
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class CacheStats:
    """Counters for one :class:`PlanCache`.

    All mutation happens under the owning cache's lock; read a coherent
    copy via :meth:`PlanCache.snapshot_stats` rather than sampling the
    live fields mid-flight.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Memory misses satisfied by the persistent backing store.
    store_hits: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        """Zero every counter in place (object identity is preserved)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.store_hits = 0

    def copy(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.evictions, self.store_hits)

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "store_hits": self.store_hits,
            "hit_rate": self.hit_rate,
        }


class PlanCache:
    """Thread-safe bounded LRU of transposition plans.

    Parameters
    ----------
    capacity:
        Maximum resident plans; least recently used plans are evicted.
    store:
        Optional persistent backing store, duck-typed to
        ``get(dims, perm, elem_bytes, spec) -> Optional[TransposePlan]``
        and ``put(plan) -> None``.  Consulted on memory misses (a
        restored plan skips the planning search entirely) and written
        through whenever a plan is built.
    on_event:
        Optional observer called with an event name — ``"hit"``,
        ``"miss"``, ``"restore"``, ``"build"``, ``"eviction"``, or
        ``"store_error"`` — outside the cache lock.  Exceptions from the
        observer propagate; keep it cheap and non-raising.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        store=None,
        on_event: Optional[Callable[[str], None]] = None,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.store = store
        self._on_event = on_event
        self._plans: "OrderedDict[tuple, TransposePlan]" = OrderedDict()
        self._lock = Lock()
        self.stats = CacheStats()

    @staticmethod
    def _key(
        dims: Sequence[int],
        perm: Sequence[int],
        elem_bytes: int,
        spec: DeviceSpec,
    ) -> tuple:
        return (
            tuple(dims),
            tuple(perm),
            elem_bytes,
            spec.name,
            spec_fingerprint(spec),
        )

    def _emit(self, *events: str) -> None:
        if self._on_event is not None:
            for event in events:
                self._on_event(event)

    def _insert(self, key: tuple, plan: TransposePlan) -> int:
        """Insert under the lock; returns how many plans were evicted."""
        evicted = 0
        self._plans[key] = plan
        self._plans.move_to_end(key)
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            self.stats.evictions += 1
            evicted += 1
        return evicted

    def get(
        self,
        dims: Sequence[int],
        perm: Sequence[int],
        elem_bytes: int = 8,
        spec: DeviceSpec = KEPLER_K40C,
        predictor: Optional[Predictor] = None,
    ) -> TransposePlan:
        """Return a cached plan, restoring or planning on miss."""
        key = self._key(dims, perm, elem_bytes, spec)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.stats.hits += 1
        if plan is not None:
            self._emit("hit")
            return plan

        # Memory miss: a persistent store can rehydrate the chosen kernel
        # directly, skipping candidate enumeration and model selection.
        restored = self.store.get(dims, perm, elem_bytes, spec) if self.store else None
        if restored is not None:
            with self._lock:
                self.stats.misses += 1
                self.stats.store_hits += 1
                evicted = self._insert(key, restored)
            self._emit("miss", "restore", *("eviction",) * evicted)
            return restored

        # Plan outside the lock: planning is the expensive part.
        plan = make_plan(dims, perm, elem_bytes, spec, predictor)
        with self._lock:
            self.stats.misses += 1
            evicted = self._insert(key, plan)
        self._emit("miss", "build", *("eviction",) * evicted)
        if self.store is not None:
            try:
                self.store.put(plan)
            except Exception:
                self._emit("store_error")
        return plan

    def __len__(self) -> int:
        return len(self._plans)

    def snapshot_stats(self, reset: bool = False) -> CacheStats:
        """A coherent copy of the counters, optionally clearing them.

        The copy and the clear happen under ``_lock``, so a concurrent
        ``get`` cannot slip an update between the two (the runtime's
        metrics registry relies on this for windowed accounting).
        """
        with self._lock:
            snap = self.stats.copy()
            if reset:
                self.stats.reset()
            return snap

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.stats.reset()


#: Process-wide default cache used by :func:`cached_plan`.
_global_cache = PlanCache()


def cached_plan(
    dims: Sequence[int],
    perm: Sequence[int],
    elem_bytes: int = 8,
    spec: DeviceSpec = KEPLER_K40C,
    predictor: Optional[Predictor] = None,
) -> TransposePlan:
    """Module-level convenience over the process-wide :class:`PlanCache`."""
    return _global_cache.get(dims, perm, elem_bytes, spec, predictor)


def global_cache() -> PlanCache:
    return _global_cache
