"""Quickstart: transpose tensors through TTLG and read the estimates.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # ------------------------------------------------------------------
    # 1. NumPy-style one-shot transposition.
    # ------------------------------------------------------------------
    a = np.arange(4 * 5 * 6, dtype=np.float64).reshape(4, 5, 6)
    b = repro.transpose(a, (2, 0, 1))
    assert np.array_equal(b, np.transpose(a, (2, 0, 1)))
    print("transpose(4x5x6, axes=(2,0,1)) matches NumPy:", b.shape)

    # ------------------------------------------------------------------
    # 2. Paper-style planning: dims with dim 0 fastest, permutation
    #    p[i] = j meaning output dim i is input dim j.
    # ------------------------------------------------------------------
    dims, perm = (16, 16, 16, 16, 16, 16), (5, 4, 3, 2, 1, 0)
    plan = repro.plan_transpose(dims, perm)
    print(f"\nplanned {dims} perm {perm}:")
    print(f"  schema            : {plan.schema.value}")
    print(f"  fused rank        : {plan.fused.scaled_rank}")
    print(f"  candidates tried  : {plan.num_candidates}")
    print(f"  predicted time    : {plan.predicted_time * 1e3:.3f} ms")
    print(f"  simulated time    : {plan.simulated_time() * 1e3:.3f} ms")
    print(f"  bandwidth         : {plan.bandwidth_gbps():.1f} GB/s")

    # ------------------------------------------------------------------
    # 3. Repeated use: plan once, execute many times (cuTT-plan style).
    # ------------------------------------------------------------------
    t = repro.Transposer((32, 8, 24), (2, 1, 0))
    src = np.random.default_rng(0).standard_normal(32 * 8 * 24)
    for _ in range(3):
        out = t(src)
    est = t.estimate()
    print(f"\nTransposer(32x8x24 reversal) after {t.calls} calls:")
    print(f"  kernel time       : {est.kernel_time * 1e6:.1f} us")
    print(f"  one-time plan cost: {est.plan_time * 1e6:.1f} us")

    # ------------------------------------------------------------------
    # 4. The queryable performance model (what a TTGT planner consumes).
    # ------------------------------------------------------------------
    est = repro.predict_time((64, 64, 64), (1, 2, 0))
    print(
        f"\npredict_time(64^3, (1,2,0)): {est.schema.value}, "
        f"{est.kernel_time * 1e6:.1f} us, {est.bandwidth_gbps:.1f} GB/s "
        f"(no data was moved)"
    )


if __name__ == "__main__":
    main()
