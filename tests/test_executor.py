"""Compiled-executor layer: parity grid, cache behavior, partitioning.

Every program kind (view chain, region list, fused index map, chunked)
must be
bit-identical to :func:`repro.kernels.common.reference_transpose` — and
to the kernels' per-call reference paths — across all four schemas,
partial-tile geometries, both dtypes, cold and warm calls, and the
``out=`` in-place form.
"""

import numpy as np
import pytest

from repro.core.layout import TensorLayout
from repro.core.lru import BoundedLRU
from repro.core.permutation import Permutation
from repro.errors import SchemaError
from repro.kernels.common import reference_transpose
from repro.kernels.executor import (
    ChunkedProgram,
    IndexedProgram,
    RegionProgram,
    ViewProgram,
    clear_exec_caches,
    compile_executor,
    exec_cache_stats,
    executor_for,
    executor_with_status,
)
from repro.kernels.fvi_match_large import FviMatchLargeKernel
from repro.kernels.fvi_match_small import FviMatchSmallKernel
from repro.kernels.naive import NaiveKernel
from repro.kernels.orthogonal_arbitrary import OrthogonalArbitraryKernel
from repro.kernels.orthogonal_distinct import OrthogonalDistinctKernel


def _od_partial():
    # 20 % 7 and 18 % 5 both nonzero: partial variants on each side.
    return OrthogonalDistinctKernel(
        TensorLayout((20, 6, 18)),
        Permutation((2, 1, 0)),
        in_prefix=0,
        blockA=7,
        out_prefix=0,
        blockB=5,
    )


def _od_exact():
    return OrthogonalDistinctKernel(
        TensorLayout((16, 6, 18)),
        Permutation((2, 1, 0)),
        in_prefix=0,
        blockA=8,
        out_prefix=0,
        blockB=6,
    )


def _oa_partial():
    # 5 % 3 and 5 % 2 nonzero through the blocked dims.
    return OrthogonalArbitraryKernel(
        TensorLayout((6, 5, 7, 4)),
        Permutation((2, 0, 3, 1)),
        in_prefix=1,
        blockA=3,
        out_prefix=1,
        blockB=2,
    )


def _oa_exact():
    return OrthogonalArbitraryKernel(
        TensorLayout((6, 5, 8, 4)),
        Permutation((2, 0, 3, 1)),
        in_prefix=1,
        blockA=5,
        out_prefix=1,
        blockB=2,
    )


def _fvi_small():
    return FviMatchSmallKernel(TensorLayout((8, 6, 5, 7)), Permutation((0, 3, 2, 1)), 4)


def _fvi_large():
    return FviMatchLargeKernel(TensorLayout((64, 4, 5, 3)), Permutation((0, 3, 2, 1)))


def _naive():
    return NaiveKernel(TensorLayout((5, 4, 3)), Permutation((1, 2, 0)))


KERNEL_FACTORIES = {
    "od-partial": _od_partial,
    "od-exact": _od_exact,
    "oa-partial": _oa_partial,
    "oa-exact": _oa_exact,
    "fvi-small": _fvi_small,
    "fvi-large": _fvi_large,
    "naive": _naive,
}


@pytest.fixture(autouse=True)
def _fresh_exec_cache():
    clear_exec_caches()
    yield
    clear_exec_caches()


# ----------------------------------------------------------------------
# Parity grid
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(KERNEL_FACTORIES))
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_execute_parity_cold_warm_out(name, dtype, rng):
    k = KERNEL_FACTORIES[name]()
    src = rng.standard_normal(k.volume).astype(dtype)
    ref = reference_transpose(src, k.layout, k.perm)

    cold = k.execute(src)  # compiles
    warm = k.execute(src)  # cached program
    out = np.empty(k.volume, dtype=dtype)
    res = k.execute(src, out=out)

    np.testing.assert_array_equal(cold, ref)
    np.testing.assert_array_equal(warm, ref)
    np.testing.assert_array_equal(out, ref)
    assert res.base is out or res is out


@pytest.mark.parametrize("name", ["od-partial", "od-exact", "oa-partial", "oa-exact"])
def test_per_call_path_matches_reference(name, rng):
    k = KERNEL_FACTORIES[name]()
    src = rng.standard_normal(k.volume)
    ref = reference_transpose(src, k.layout, k.perm)
    np.testing.assert_array_equal(k.execute_per_call(src), ref)


@pytest.mark.parametrize("name", sorted(KERNEL_FACTORIES))
def test_program_kind_selection(name):
    k = KERNEL_FACTORIES[name]()
    program = executor_for(k)
    if name.endswith("partial"):
        assert isinstance(program, RegionProgram)
        assert program.kind == "region"
    else:
        assert isinstance(program, ViewProgram)
        assert not isinstance(program, RegionProgram)


@pytest.mark.parametrize("name", ["od-partial", "od-exact", "oa-partial", "oa-exact"])
def test_indexed_matches_lowered_and_reference(name, rng):
    """Lowered (view/region) and indexed programs agree bit-for-bit."""
    k = KERNEL_FACTORIES[name]()
    src = rng.standard_normal(k.volume)
    ref = reference_transpose(src, k.layout, k.perm)
    indexed = compile_executor(k, lowering=False)
    assert isinstance(indexed, (IndexedProgram, ChunkedProgram))
    np.testing.assert_array_equal(indexed.run(src), ref)
    lowered = compile_executor(k)
    if k.supports_view_lowering():
        assert isinstance(lowered, ViewProgram)
        assert not isinstance(lowered, RegionProgram)
    else:
        assert isinstance(lowered, RegionProgram)
    np.testing.assert_array_equal(lowered.run(src), ref)


@pytest.mark.parametrize("name", ["od-partial", "oa-partial"])
def test_region_program_boxes_tile_output(name):
    """Region boxes are disjoint and cover every output element once."""
    k = KERNEL_FACTORIES[name]()
    program = compile_executor(k)
    assert isinstance(program, RegionProgram)
    hits = np.zeros(program.out_shape, dtype=np.int64)
    for region in program.regions:
        hits[tuple(slice(lo, hi) for lo, hi in region)] += 1
    assert np.array_equal(hits, np.ones_like(hits))
    # One box per populated slice variant.
    assert len(program.regions) == len(k.coverage.variants_order())


@pytest.mark.parametrize("name", ["od-partial", "oa-partial", "od-exact"])
def test_chunked_program_parity(name, rng):
    """A tiny index budget forces chunked materialization; still exact."""
    k = KERNEL_FACTORIES[name]()
    src = rng.standard_normal(k.volume)
    ref = reference_transpose(src, k.layout, k.perm)
    chunked = compile_executor(k, lowering=False, max_index_bytes=1024)
    assert isinstance(chunked, ChunkedProgram)
    np.testing.assert_array_equal(chunked.run(src), ref)
    out = np.empty(k.volume, dtype=src.dtype)
    chunked.run(src, out=out)
    np.testing.assert_array_equal(out, ref)


@pytest.mark.parametrize("name", sorted(KERNEL_FACTORIES))
@pytest.mark.parametrize("parts", [1, 3, 7])
def test_partitioned_execution_covers_output(name, parts, rng):
    k = KERNEL_FACTORIES[name]()
    src = rng.standard_normal(k.volume)
    ref = reference_transpose(src, k.layout, k.perm)
    for program in (
        executor_for(k),
        compile_executor(k, lowering=False)
        if getattr(k, "variant_rel_maps", None) is not None
        else None,
        compile_executor(k, lowering=False, max_index_bytes=2048)
        if getattr(k, "variant_rel_maps", None) is not None
        else None,
    ):
        if program is None:
            continue
        out = np.empty(k.volume, dtype=src.dtype)
        tasks = program.partition(parts)
        assert tasks, "partition must yield at least one task"
        for task in tasks:
            program.run_part(src, out, task)
        np.testing.assert_array_equal(out, ref)


def test_plan_and_transposer_out_threading(rng):
    import repro

    plan = repro.make_plan((20, 6, 18), (2, 1, 0))
    src = rng.standard_normal(plan.layout.volume)
    ref = reference_transpose(src, plan.layout, plan.perm)
    out = np.empty_like(src)
    plan.execute(src, out=out)
    np.testing.assert_array_equal(out, ref)
    assert plan.executor() is plan.executor()  # cached

    tr = repro.Transposer((20, 6, 18), (2, 1, 0))
    out2 = np.empty_like(src)
    tr(src, out=out2)
    np.testing.assert_array_equal(out2, ref)


def test_transpose_api_out(rng):
    import repro

    a = rng.standard_normal((5, 6, 7))
    expected = np.ascontiguousarray(np.transpose(a, (2, 0, 1)))
    out = np.empty_like(expected)
    got = repro.transpose(a, (2, 0, 1), out=out)
    assert got is out
    np.testing.assert_array_equal(out, expected)


def test_check_output_rejects_bad_out(rng):
    k = _od_partial()
    src = rng.standard_normal(k.volume)
    with pytest.raises(SchemaError):
        k.execute(src, out=np.empty(k.volume - 1))
    with pytest.raises(SchemaError):
        k.execute(src, out=np.empty(k.volume, dtype=np.float32))
    noncontig = np.empty((k.volume, 2))[:, 0]
    with pytest.raises(SchemaError):
        k.execute(src, out=noncontig)


# ----------------------------------------------------------------------
# Program cache
# ----------------------------------------------------------------------


def test_program_cache_shared_across_instances():
    k1, k2 = _od_partial(), _od_partial()
    p1, hit1 = executor_with_status(k1)
    p2, hit2 = executor_with_status(k2)
    assert not hit1 and hit2
    assert p1 is p2  # content key, not object identity
    stats = exec_cache_stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["entries"] == 1
    assert stats["bytes"] == p1.nbytes


def test_clear_exec_caches_resets():
    executor_for(_od_partial())
    assert exec_cache_stats()["entries"] == 1
    clear_exec_caches()
    stats = exec_cache_stats()
    assert stats["entries"] == 0 and stats["misses"] == 0


def test_frozen_programs_are_immutable():
    program = compile_executor(_od_partial(), lowering=False)
    with pytest.raises(ValueError):
        program.index_map[0] = 1


@pytest.mark.parametrize("orientation", ["gather", "scatter"])
def test_indexed_orientations_bit_equal(orientation, rng):
    """Both permutation-map orientations produce identical output."""
    k = _od_partial()
    src = rng.standard_normal(k.volume)
    ref = reference_transpose(src, k.layout, k.perm)
    base = compile_executor(k, lowering=False)
    assert base.orientation == "gather"  # small map stays gather
    fwd = (
        np.array(base.index_map)
        if base.orientation == "gather"
        else np.argsort(base.index_map)
    )
    prog = IndexedProgram(fwd, orientation=orientation)
    np.testing.assert_array_equal(prog.run(src), ref)
    out = np.empty_like(src)
    prog.run(src, out=out)
    np.testing.assert_array_equal(out, ref)
    out2 = np.empty_like(src)
    for task in prog.partition(4):
        prog.run_part(src, out2, task)
    np.testing.assert_array_equal(out2, ref)


def test_indexed_orientation_threshold():
    from repro.kernels.executor import SCATTER_MIN_BYTES

    small = IndexedProgram(np.arange(16, dtype=np.int64))
    assert small.orientation == "gather"
    big = IndexedProgram(np.arange(SCATTER_MIN_BYTES // 8, dtype=np.int64))
    assert big.orientation == "scatter"
    with pytest.raises(ValueError):
        IndexedProgram(np.arange(4, dtype=np.int64), orientation="sideways")


# ----------------------------------------------------------------------
# BoundedLRU
# ----------------------------------------------------------------------


def test_bounded_lru_evicts_lru_not_everything():
    lru = BoundedLRU(maxsize=3)
    for i in range(3):
        lru.put(i, i * 10)
    assert lru.get(0) == 0  # 0 now most-recent
    lru.put(3, 30)  # evicts 1 (LRU), NOT the whole cache
    assert 1 not in lru
    assert lru.get(0) == 0 and lru.get(2) == 20 and lru.get(3) == 30
    assert lru.evictions == 1


def test_bounded_lru_byte_budget():
    lru = BoundedLRU(maxsize=100, max_bytes=100, sizeof=len)
    lru.put("a", b"x" * 60)
    lru.put("b", b"y" * 60)  # over budget: evicts "a"
    assert "a" not in lru and "b" in lru
    assert lru.nbytes == 60
    # A single oversized entry stays resident (never evict to empty).
    lru.put("huge", b"z" * 500)
    assert "huge" in lru


def test_bounded_lru_stats_and_validation():
    lru = BoundedLRU(maxsize=2)
    lru.put("k", 1)
    lru.get("k")
    lru.get("absent")
    s = lru.stats()
    assert s["hits"] == 1 and s["misses"] == 1 and s["hit_rate"] == 0.5
    lru.reset_stats()
    assert lru.stats()["hits"] == 0
    with pytest.raises(ValueError):
        BoundedLRU(maxsize=0)
    with pytest.raises(ValueError):
        BoundedLRU(maxsize=1, max_bytes=0)

# ----------------------------------------------------------------------
# Runtime integration: metrics + pool-partitioned execution
# ----------------------------------------------------------------------


def test_scheduler_records_executor_metrics(rng):
    from repro.runtime import TransposeService

    dims, perm = (20, 6, 18), (2, 1, 0)
    src = rng.standard_normal(int(np.prod(dims)))
    with TransposeService(num_streams=2) as service:
        r1 = service.execute(dims, perm, payload=src)
        r2 = service.execute(dims, perm, payload=src)
        layout, p = TensorLayout(dims), Permutation(perm)
        ref = reference_transpose(src, layout, p)
        np.testing.assert_array_equal(r1.output, ref)
        np.testing.assert_array_equal(r2.output, ref)
        stats = service.stats()
    counters = stats["metrics"]["counters"]
    assert counters["exec_cache_misses"] == 1
    assert counters["exec_cache_hits"] == 1
    hists = stats["metrics"]["histograms"]
    assert hists["exec_cold_s"]["count"] == 1
    assert hists["exec_warm_s"]["count"] == 1
    assert stats["executor"]["entries"] >= 1


def test_service_execute_partitioned(rng):
    from repro.runtime import TransposeService

    dims, perm = (20, 6, 18), (2, 1, 0)
    src = rng.standard_normal(int(np.prod(dims)))
    ref = reference_transpose(src, TensorLayout(dims), Permutation(perm))
    with TransposeService(num_streams=3) as service:
        report = service.execute_partitioned(dims, perm, payload=src, parts=5)
        np.testing.assert_array_equal(report.output, ref)
        assert report.schema
        counters = service.stats()["metrics"]["counters"]
    assert counters["executions_completed"] == 1


def test_service_partitioned_requires_payload():
    from repro.errors import InvalidLayoutError
    from repro.runtime import TransposeService

    with TransposeService(num_streams=1) as service:
        with pytest.raises(InvalidLayoutError):
            service.submit_partitioned((4, 4), (1, 0), payload=None)
