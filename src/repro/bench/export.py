"""Result export: CSV and JSON for external plotting/analysis.

The figure benches print ASCII renderings; downstream users replotting
with matplotlib/gnuplot want machine-readable series.  These helpers
serialize :class:`~repro.bench.record.SuiteResult` losslessly.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Optional, Union

from repro.bench.record import SuiteResult


def suite_to_rows(suite: SuiteResult) -> list:
    """Flatten a suite into one dict per (case, library) pair."""
    rows = []
    for r in suite.results:
        for lib, bw in r.bandwidth.items():
            rows.append(
                {
                    "suite": suite.title,
                    "dims": "x".join(map(str, r.case.dims)),
                    "perm": " ".join(map(str, r.case.perm)),
                    "scaled_rank": r.case.scaled_rank,
                    "volume": r.case.volume,
                    "library": lib,
                    "bandwidth_gbps": bw,
                    "kernel_time_s": r.kernel_time.get(lib),
                    "schema": r.schema.get(lib),
                }
            )
    return rows


def suite_to_csv(
    suite: SuiteResult, path: Optional[Union[str, Path]] = None
) -> str:
    """Serialize to CSV; also writes to ``path`` when given."""
    rows = suite_to_rows(suite)
    buf = io.StringIO()
    if rows:
        writer = csv.DictWriter(
            buf, fieldnames=list(rows[0].keys()), lineterminator="\n"
        )
        writer.writeheader()
        writer.writerows(rows)
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def suite_to_json(
    suite: SuiteResult, path: Optional[Union[str, Path]] = None
) -> str:
    """Serialize to JSON (list of row objects plus suite metadata)."""
    payload = {
        "title": suite.title,
        "libraries": suite.libraries(),
        "num_cases": len(suite.results),
        "rows": suite_to_rows(suite),
    }
    text = json.dumps(payload, indent=2)
    if path is not None:
        Path(path).write_text(text)
    return text


def load_suite_json(path: Union[str, Path]) -> dict:
    """Round-trip loader for :func:`suite_to_json` output."""
    return json.loads(Path(path).read_text())
