"""Native throughput: C-emitted transpose kernels vs the Python nest.

The same 64 MiB OD/OA cases as ``bench_codegen_throughput``, but the
comparison is *within* the codegen tier: the C backend emitted by
``repro.kernels.native`` (compiled out-of-band, loaded via ctypes with
the GIL released for the whole call) against the exec-compiled Python
slice nest running the identical descriptor.  Per case:

**parity first** — the native-backed :class:`~repro.kernels.codegen
.NestProgram` must produce bit-identical output to ``np.transpose`` on
``run``, ``run_batch``, and the ``partition``/``run_part`` path, before
anything is timed.

**warm throughput** — warm ``run`` of the native program vs a
``use_native=False`` twin of the same descriptor, interleaved; the
acceptance gate is ``>= MIN_NATIVE_SPEEDUP`` in full mode (the win is
removing per-tile interpreter dispatch, so it gates on any CPU count).

**warm restart** — the plan store is reopened, every compiled program
and dlopen handle dropped, exactly what a restarted process (or a
procpool worker) sees.  Rebuilding the programs must run ZERO compiler
invocations: the on-disk ``plans_native/`` object cache is asserted to
serve every case (``native_compiled == 0``, ``native_so_cache_hits >=
cases``), alongside the zero-search artifact-cache invariant.

Run directly::

    PYTHONPATH=src python benchmarks/bench_native_throughput.py

writes ``results/native_throughput.json``.  CI runs ``--smoke``:
smaller operands, fewer repeats, gating only the deterministic
invariants.  Without a C toolchain (``CC=/bin/false``) the perf gate is
skipped and the same parity/restart assertions run against the
pure-Python fallback chain — the bench must still pass.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from conftest import bench_parser, env_stamp, gate, interleaved_ms, pick_repeats
from repro.core.plan import make_plan
from repro.kernels.codegen import (
    NestProgram,
    codegen_stats,
    native_enabled,
    reset_codegen_stats,
)
from repro.kernels.common import reference_transpose
from repro.kernels.executor import clear_exec_caches, compile_executor
from repro.kernels.native import compiler_info

RESULTS_PATH = (
    Path(__file__).resolve().parent.parent
    / "results"
    / "native_throughput.json"
)

#: name -> (full dims, smoke dims, perm).  All f64; the full cases are
#: 64 MiB, the smoke cases ~8 MiB (still above NEST_MIN_BYTES).  The
#: oa-partial extents are skewed so the swapped inner pair forms a
#: strided plane well past the cache-resident span — the regime the
#: blocked micro-kernel exists for (a cube's inner plane is one
#: contiguous L1-resident block, where every implementation is just
#: memcpy-bound).
CASES = {
    "od-reverse-64MiB": (
        (128, 64, 32, 32),
        (64, 32, 16, 16),
        (3, 2, 1, 0),
    ),
    "oa-partial-64MiB": (
        (64, 32768, 2, 2),
        (32, 8192, 2, 2),
        (1, 0, 3, 2),
    ),
}

#: Warm native run over the warm Python nest, full mode, any host.
MIN_NATIVE_SPEEDUP = 2.0

#: Batch rows for the run_batch parity check.
PARITY_BATCH = 2


def bench_case(name, dims, perm, repeats, store, have_cc):
    plan = make_plan(dims, perm)
    volume = plan.layout.volume
    src = np.random.default_rng(3).standard_normal(volume)
    ref = reference_transpose(src, plan.layout, plan.perm)

    t0 = time.perf_counter()
    nest = compile_executor(
        plan.kernel, lowering=False, codegen=True, artifacts=store
    )
    compile_ms = (time.perf_counter() - t0) * 1e3
    assert nest.kind == "nest", (
        f"{name}: search declined a {src.nbytes >> 20} MiB "
        f"memory-bound case (kind={nest.kind})"
    )
    backend = nest.descriptor["backend"]
    if have_cc:
        assert backend == "c", (
            f"{name}: toolchain present but backend is {backend!r}"
        )

    # The twin runs the identical descriptor through the interpreted
    # nest — same tiles, same loop order, native attach forced off.
    python_nest = NestProgram(dict(nest.descriptor), use_native=False)
    assert python_nest.descriptor["backend"] != "c"

    # Parity on every execution surface before any timing.
    assert np.array_equal(nest.run(src), ref), f"{name}: run parity"
    srcs = np.stack([src * (i + 1) for i in range(PARITY_BATCH)])
    refs = np.stack(
        [reference_transpose(s, plan.layout, plan.perm) for s in srcs]
    )
    assert np.array_equal(nest.run_batch(srcs), refs), (
        f"{name}: run_batch parity"
    )
    tasks = nest.partition(4)
    assert len(tasks) > 1, f"{name}: degenerate partition {tasks}"
    out = np.empty(volume)
    for task in tasks:
        nest.run_part(src, out, task)
    assert np.array_equal(out, ref), f"{name}: partition parity"
    assert np.array_equal(python_nest.run(src), ref), (
        f"{name}: python twin parity"
    )

    out_n = np.empty(volume)
    out_p = np.empty(volume)
    nest.run(src, out=out_n)  # warm both before interleaving
    python_nest.run(src, out=out_p)
    timed = interleaved_ms(
        {
            "python": lambda: python_nest.run(src, out=out_p),
            "native": lambda: nest.run(src, out=out_n),
        },
        repeats,
    )
    python_ms, _ = timed["python"]
    native_ms, _ = timed["native"]
    desc = nest.descriptor
    return {
        "dims": list(dims),
        "perm": list(perm),
        "schema": plan.schema.value,
        "backend": backend,
        "payload_mib": round(src.nbytes / (1 << 20), 1),
        "tiles": list(desc["tiles"]),
        "order": list(desc["order"]),
        "compile_ms": round(compile_ms, 3),
        "python_ms": round(python_ms, 3),
        "native_ms": round(native_ms, 3),
        "native_speedup": round(python_ms / native_ms, 3),
    }


def main(argv=None):
    ap = bench_parser(__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, default=RESULTS_PATH)
    args = ap.parse_args(argv)
    repeats = pick_repeats(args, full=7, smoke=2)

    from repro.runtime.store import PlanStore

    have_cc = native_enabled()
    cc = compiler_info()
    state_dir = Path(tempfile.mkdtemp(prefix="repro-native-bench-"))
    store = PlanStore(state_dir / "plans.json")
    reset_codegen_stats()

    results = {}
    for name, (full_dims, smoke_dims, perm) in CASES.items():
        dims = smoke_dims if args.smoke else full_dims
        results[name] = bench_case(name, dims, perm, repeats, store, have_cc)

    cold = codegen_stats()
    failures = []
    if have_cc and cold["native_attached"] < len(CASES):
        failures.append(
            f"cold pass attached native to {cold['native_attached']} of "
            f"{len(CASES)} cases"
        )
    if have_cc and (
        cold["native_call_failures"]
        or cold["native_compile_failures"]
        or cold["native_load_failures"]
    ):
        failures.append(
            f"native fallbacks fired: "
            f"{cold['native_compile_failures']} compile / "
            f"{cold['native_load_failures']} load / "
            f"{cold['native_call_failures']} call"
        )

    # Warm restart: reopen the store, drop every compiled program and
    # dlopen handle — what a new process (or procpool worker) sees.
    # The on-disk object cache must serve every case: zero compiler
    # invocations, zero loop-order searches.
    store.close()
    clear_exec_caches()
    reset_codegen_stats()
    warm_store = PlanStore(state_dir / "plans.json")
    for name, (full_dims, smoke_dims, perm) in CASES.items():
        dims = smoke_dims if args.smoke else full_dims
        plan = make_plan(dims, perm)
        program = compile_executor(
            plan.kernel, lowering=False, codegen=True, artifacts=warm_store
        )
        assert program.kind == "nest", f"{name}: warm rebuild fell back"
        if have_cc:
            assert program.descriptor["backend"] == "c", (
                f"{name}: warm rebuild lost the native backend"
            )
    warm = codegen_stats()
    if warm["searches"] != 0:
        failures.append(
            f"warm restart re-ran {warm['searches']} loop-order searches "
            "(expected 0)"
        )
    if have_cc and warm["native_compiled"] != 0:
        failures.append(
            f"warm restart invoked the compiler {warm['native_compiled']} "
            "times (expected 0: the .so cache must serve every case)"
        )
    if have_cc and warm["native_so_cache_hits"] < len(CASES):
        failures.append(
            f"warm restart hit the .so cache {warm['native_so_cache_hits']} "
            f"times for {len(CASES)} cases"
        )

    print(
        f"{'case':<20s} {'backend':<8s} {'MiB':>6s} {'python':>9s} "
        f"{'native':>9s} {'speedup':>8s}  {'tiles':<18s}"
    )
    for name, r in results.items():
        print(
            f"{name:<20s} {r['backend']:<8s} {r['payload_mib']:>6.1f} "
            f"{r['python_ms']:>7.2f}ms {r['native_ms']:>7.2f}ms "
            f"{r['native_speedup']:>7.2f}x  "
            f"{'x'.join(str(t) for t in r['tiles']):<18s}"
        )
    print(
        f"toolchain: {cc['path'] or 'none'}"
        + (f" ({cc['version']})" if cc["version"] else "")
        + f"; cold: {cold['native_compiled']} compiled; warm restart: "
        f"{warm['native_compiled']} compiles, "
        f"{warm['native_so_cache_hits']} .so cache hits, "
        f"{warm['searches']} searches"
    )

    if args.smoke:
        # Throughput needs a quiet host; smoke gates only the
        # deterministic invariants (parity asserted in bench_case, the
        # compile/search counters above).
        return gate("NATIVE SMOKE REGRESSION", failures, smoke=True)

    if have_cc:
        failures += [
            f"{name}: native speedup {r['native_speedup']}x < "
            f"{MIN_NATIVE_SPEEDUP}x over the Python nest"
            for name, r in results.items()
            if r["native_speedup"] < MIN_NATIVE_SPEEDUP
        ]
    summary = {
        "env": env_stamp(have_cc, "" if have_cc else "no C toolchain"),
        "repeats": repeats,
        "min_native_speedup": MIN_NATIVE_SPEEDUP,
        "warm_restart": {
            "native_compiled": warm["native_compiled"],
            "native_so_cache_hits": warm["native_so_cache_hits"],
            "searches": warm["searches"],
        },
        "cases": results,
    }
    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {args.out}")
    return gate("ACCEPTANCE THRESHOLDS NOT MET", failures)


if __name__ == "__main__":
    sys.exit(main())
