"""Persistent plan store: round-trips, corruption recovery, warm restarts."""

import json

import numpy as np
import pytest

from repro.core.plan import make_plan
from repro.gpusim.spec import KEPLER_K40C
from repro.model.pretrained import oracle_predictor
from repro.runtime import PlanStore, TransposeService
from repro.runtime.store import STORE_VERSION, rehydrate_plan, serialize_plan

ORACLE = oracle_predictor()

#: One case per persistable schema (see test_covers_every_schema).
CASES = [
    ((64, 8, 8), (0, 2, 1)),      # fvi-match-large
    ((8, 8, 8, 8), (0, 3, 1, 2)),  # fvi-match-small
    ((128, 4, 128), (2, 1, 0)),   # orthogonal-distinct
    ((16, 16, 16), (2, 1, 0)),    # orthogonal-arbitrary
    ((15, 17, 9), (1, 0, 2)),     # ragged extents, partial tiles
]


class TestRoundTrip:
    @pytest.mark.parametrize("dims,perm", CASES)
    def test_plan_round_trip(self, tmp_path, dims, perm):
        plan = make_plan(dims, perm, 8, KEPLER_K40C, ORACLE)
        store = PlanStore(tmp_path / "plans.json")
        store.put(plan)

        reopened = PlanStore(tmp_path / "plans.json")
        restored = reopened.get(dims, perm, 8, KEPLER_K40C)
        assert restored is not None
        assert restored.schema == plan.schema
        assert restored.num_candidates == plan.num_candidates
        assert restored.plan_time == plan.plan_time
        assert restored.coarsening == plan.coarsening
        assert restored.simulated_time() == pytest.approx(
            plan.simulated_time(), rel=1e-12
        )
        x = np.arange(int(np.prod(dims)), dtype=np.float64)
        assert np.array_equal(restored.execute(x), plan.execute(x))

    def test_covers_every_schema(self):
        schemas = {
            make_plan(d, p, 8, KEPLER_K40C, ORACLE).schema.value
            for d, p in CASES
        }
        assert schemas == {
            "fvi-match-large",
            "fvi-match-small",
            "orthogonal-distinct",
            "orthogonal-arbitrary",
        }

    def test_serialize_rehydrate_direct(self):
        plan = make_plan((8, 8, 8), (2, 1, 0), 4, KEPLER_K40C, ORACLE)
        entry = serialize_plan(plan)
        json.dumps(entry)  # JSON-friendly
        back = rehydrate_plan(entry, KEPLER_K40C)
        assert back.schema == plan.schema
        assert back.elem_bytes == 4

    def test_spec_mismatch_is_a_miss(self, tmp_path):
        plan = make_plan((8, 8, 8), (2, 1, 0), 8, KEPLER_K40C, ORACLE)
        store = PlanStore(tmp_path / "plans.json")
        store.put(plan)
        # Same *name*, different geometry: the fingerprint in the key
        # differs, so the lookup misses instead of aliasing.
        impostor = KEPLER_K40C.with_overrides(num_sms=2)
        assert store.get((8, 8, 8), (2, 1, 0), 8, impostor) is None


class TestCorruptionRecovery:
    def test_unreadable_file_is_quarantined(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text("{not json at all")
        store = PlanStore(path)
        assert len(store) == 0
        assert store.recovered_from_corruption
        assert path.with_suffix(".json.corrupt").exists()
        # The store is fully usable afterwards.
        store.put(make_plan((8, 8, 8), (2, 1, 0), 8, KEPLER_K40C, ORACLE))
        assert len(PlanStore(path)) == 1

    def test_version_mismatch_is_quarantined(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(json.dumps({"store_version": 999, "entries": {}}))
        store = PlanStore(path)
        assert len(store) == 0
        assert store.recovered_from_corruption

    def test_bad_entries_are_dropped_on_load(self, tmp_path):
        plan = make_plan((8, 8, 8), (2, 1, 0), 8, KEPLER_K40C, ORACLE)
        path = tmp_path / "plans.json"
        good = PlanStore(path)
        good.put(plan)
        payload = json.loads(path.read_text())
        payload["entries"]["junk-key"] = 42
        payload["entries"]["junk-key-2"] = {"no": "schema"}
        path.write_text(json.dumps(payload))

        store = PlanStore(path)
        assert len(store) == 1
        assert store.corrupt_entries == 2
        assert store.get((8, 8, 8), (2, 1, 0), 8, KEPLER_K40C) is not None

    def test_malformed_entry_on_get_is_dropped(self, tmp_path):
        plan = make_plan((8, 8, 8), (2, 1, 0), 8, KEPLER_K40C, ORACLE)
        path = tmp_path / "plans.json"
        store = PlanStore(path)
        store.put(plan)
        payload = json.loads(path.read_text())
        (key,) = payload["entries"]
        payload["entries"][key]["kernel_params"] = {"garbage": True}
        path.write_text(json.dumps(payload))

        reopened = PlanStore(path)
        assert reopened.get((8, 8, 8), (2, 1, 0), 8, KEPLER_K40C) is None
        assert reopened.corrupt_entries == 1
        assert len(reopened) == 0  # entry was evicted, not retried forever

    def test_store_version_constant_in_file(self, tmp_path):
        path = tmp_path / "plans.json"
        store = PlanStore(path)
        store.put(make_plan((8, 8, 8), (2, 1, 0), 8, KEPLER_K40C, ORACLE))
        assert json.loads(path.read_text())["store_version"] == STORE_VERSION


class TestWarmRestart:
    """Fig. 12 in runtime terms: a warm store restores the repeated-use
    bandwidth immediately after a process restart, skipping the planning
    search whose amortization Fig. 12 sweeps over call counts."""

    DIMS = (16,) * 6
    PERM = (4, 1, 2, 5, 3, 0)  # Fig. 12b's plan-heavy permutation

    def test_warm_store_reproduces_repeated_call_speedup(self, tmp_path):
        store_path = tmp_path / "plans.json"
        with TransposeService(
            predictor=ORACLE, store_path=store_path, num_streams=2
        ) as cold:
            plan = cold.plan(self.DIMS, self.PERM)
            cold_counters = cold.metrics.snapshot()["counters"]
        assert cold_counters["plans_built"] == 1

        # "Process restart": a fresh service warm-starts from the store.
        with TransposeService(
            predictor=ORACLE, store_path=store_path, num_streams=2
        ) as warm:
            restored = warm.plan(self.DIMS, self.PERM)
            warm_counters = warm.metrics.snapshot()["counters"]
        assert warm_counters.get("plans_built", 0) == 0
        assert warm_counters["plans_restored"] == 1

        # Bench_fig12 terms: the first call of a cold process pays
        # plan + kernel (single-use bandwidth); the warm process's first
        # call achieves the fully amortized repeated-use bandwidth.
        single_use = plan.bandwidth_gbps(repeats=1, include_plan=True)
        amortized = plan.bandwidth_gbps(repeats=4096, include_plan=True)
        warm_first_call = restored.bandwidth_gbps(repeats=1, include_plan=False)
        assert warm_first_call > 2 * single_use
        assert warm_first_call == pytest.approx(amortized, rel=0.05)
        # And the restored plan is the same plan, not a lookalike.
        assert restored.schema == plan.schema
        assert restored.simulated_time() == pytest.approx(
            plan.simulated_time(), rel=1e-12
        )
