"""Unit tests for texture, occupancy, noise, counters, spec."""

import math

import numpy as np
import pytest

from repro.errors import DeviceConfigError
from repro.gpusim.counters import KernelCounters, LaunchGeometry
from repro.gpusim.noise import measurement_jitter
from repro.gpusim.occupancy import blocks_per_sm_limit, occupancy_for
from repro.gpusim.spec import KEPLER_K40C, PASCAL_P100, DeviceSpec
from repro.gpusim.texture import offset_array_traffic


class TestSpec:
    def test_k40_matches_table_iii(self):
        assert KEPLER_K40C.num_sms == 15
        assert KEPLER_K40C.cores_per_sm == 192
        assert KEPLER_K40C.global_memory_bytes == 12 * 1024**3
        assert KEPLER_K40C.clock_hz == pytest.approx(745e6)

    def test_derived_quantities(self):
        assert KEPLER_K40C.max_warps_per_sm == 64
        assert KEPLER_K40C.block_slots == 15 * 16
        assert KEPLER_K40C.effective_bandwidth < KEPLER_K40C.peak_bandwidth

    def test_describe_mentions_key_numbers(self):
        text = KEPLER_K40C.describe()
        assert "15 SMs" in text and "288 GB/s" in text

    def test_with_overrides(self):
        spec = KEPLER_K40C.with_overrides(num_sms=30)
        assert spec.num_sms == 30
        assert KEPLER_K40C.num_sms == 15  # original untouched

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_sms", 0),
            ("warp_size", 33),
            ("peak_bandwidth", -1.0),
            ("bandwidth_efficiency", 1.5),
        ],
    )
    def test_invalid_specs(self, field, value):
        with pytest.raises(DeviceConfigError):
            KEPLER_K40C.with_overrides(**{field: value})


class TestTexture:
    def test_compulsory_misses(self):
        t = offset_array_traffic(array_bytes=1024, warp_accesses=8)
        assert t.miss_tx == 8  # fewer accesses than lines: all miss

    def test_steady_state_hit_rate(self):
        t = offset_array_traffic(array_bytes=128, warp_accesses=100_000)
        # ~0.5% steady misses plus 1 compulsory.
        assert 300 < t.miss_tx < 700

    def test_zero_array(self):
        t = offset_array_traffic(0, 100)
        assert t.miss_tx <= 100

    def test_misses_never_exceed_accesses(self):
        t = offset_array_traffic(array_bytes=10**6, warp_accesses=3)
        assert t.miss_tx == 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            offset_array_traffic(-1, 10)
        with pytest.raises(ValueError):
            offset_array_traffic(10, 10, hit_rate=1.5)


class TestOccupancy:
    def test_smem_limits_blocks(self):
        geom = LaunchGeometry(1000, 256, shared_mem_per_block=10 * 1024)
        assert blocks_per_sm_limit(KEPLER_K40C, geom) == 4  # 48K/10K

    def test_thread_limit(self):
        geom = LaunchGeometry(1000, 1024, shared_mem_per_block=0)
        occ = occupancy_for(KEPLER_K40C, geom)
        assert occ.blocks_per_sm == 2  # 2048 threads / 1024

    def test_wave_count(self):
        geom = LaunchGeometry(1000, 256, shared_mem_per_block=0)
        occ = occupancy_for(KEPLER_K40C, geom)
        slots = occ.blocks_per_sm * 15
        assert occ.waves == math.ceil(1000 / slots)

    def test_single_wave_efficiency_is_one(self):
        geom = LaunchGeometry(3, 256)
        assert occupancy_for(KEPLER_K40C, geom).wave_efficiency == 1.0

    def test_even_waves_efficiency_one(self):
        geom = LaunchGeometry(15 * 8 * 2, 256)
        occ = occupancy_for(KEPLER_K40C, geom)
        if occ.waves > 1:
            assert occ.wave_efficiency == pytest.approx(1.0)

    def test_ragged_tail_hurts(self):
        geom_even = LaunchGeometry(15 * 8 * 4, 256)
        geom_ragged = LaunchGeometry(15 * 8 * 3 + 1, 256)
        assert (
            occupancy_for(KEPLER_K40C, geom_ragged).wave_efficiency
            < occupancy_for(KEPLER_K40C, geom_even).wave_efficiency
        )

    def test_oversized_block_raises(self):
        with pytest.raises(ValueError):
            occupancy_for(KEPLER_K40C, LaunchGeometry(1, 2048))

    def test_oversized_smem_raises(self):
        with pytest.raises(ValueError):
            occupancy_for(
                KEPLER_K40C, LaunchGeometry(1, 256, shared_mem_per_block=64 * 1024)
            )

    def test_p100_more_resident_blocks(self):
        geom = LaunchGeometry(10_000, 128, shared_mem_per_block=0)
        assert (
            occupancy_for(PASCAL_P100, geom).blocks_per_sm
            > occupancy_for(KEPLER_K40C, geom).blocks_per_sm / 2
        )


class TestNoise:
    def test_deterministic(self):
        assert measurement_jitter("k") == measurement_jitter("k")

    def test_distinct_keys_differ(self):
        assert measurement_jitter("a") != measurement_jitter("b")

    def test_zero_scale_is_identity(self):
        assert measurement_jitter("x", 0.0) == 1.0

    def test_bounded(self):
        for i in range(200):
            f = measurement_jitter(("key", i), 0.02)
            assert math.exp(-0.07) < f < math.exp(0.07)

    def test_negative_scale_raises(self):
        with pytest.raises(ValueError):
            measurement_jitter("x", -0.1)


class TestCounters:
    def test_merge_adds(self):
        a = KernelCounters(dram_ld_tx=3, active_lanes=10, lane_slots=32)
        b = KernelCounters(dram_ld_tx=4, active_lanes=5, lane_slots=32)
        m = a.merge(b)
        assert m.dram_ld_tx == 7
        assert m.active_lanes == 15

    def test_iadd(self):
        a = KernelCounters(dram_st_tx=2)
        a += KernelCounters(dram_st_tx=5)
        assert a.dram_st_tx == 7

    def test_scaled(self):
        c = KernelCounters(dram_ld_tx=3).scaled(4)
        assert c.dram_ld_tx == 12

    def test_scaled_negative_raises(self):
        with pytest.raises(ValueError):
            KernelCounters().scaled(-1)

    def test_lane_efficiency(self):
        c = KernelCounters(lane_slots=64, active_lanes=32)
        assert c.lane_efficiency == 0.5
        assert KernelCounters().lane_efficiency == 1.0

    def test_transaction_efficiency(self):
        c = KernelCounters(dram_ld_tx=2, dram_ld_useful_bytes=128)
        assert c.transaction_efficiency == 0.5

    def test_validate_catches_inconsistency(self):
        with pytest.raises(ValueError):
            KernelCounters(active_lanes=5, lane_slots=1).validate()
        with pytest.raises(ValueError):
            KernelCounters(dram_ld_tx=-1).validate()

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            LaunchGeometry(-1, 256)
        with pytest.raises(ValueError):
            LaunchGeometry(1, 0)

    def test_geometry_warps(self):
        assert LaunchGeometry(1, 256).warps_per_block() == 8
        assert LaunchGeometry(1, 33).warps_per_block() == 2
