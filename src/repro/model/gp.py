"""Gaussian-process regression for the online cost model.

The offline Table II model is a per-schema *linear* fit — the right
shape for the paper's simulated-GPU time, but the feedback loop
(:mod:`repro.model.feedback`) retrains on **measured host wall time**,
which bends with cache effects, pool contention, and dispatch overhead
that no linear-in-features model captures.  A GP with an RBF kernel
fits those curves from a few dozen reservoir samples and, unlike the
point-estimate models, reports *how sure it is*: ``predict_with_std``
returns a posterior standard deviation per query, which is what turns
the calibrator's fixed explore counts into principled explore/exploit
(GPy is the exemplar here, per PAPERS.md — this is the dependency-free
subset the feedback loop needs, not a framework).

Exact GP inference is O(n^3) in training points; the feedback reservoir
caps n at a few hundred, and :class:`GPModel` additionally subsamples
deterministically above :data:`MAX_GP_POINTS`, so fits stay in the
low-millisecond range.

Numerics: inputs are standardized per feature, targets are centered and
scaled, the length scale defaults to the median pairwise distance
heuristic, and the kernel is solved by Cholesky with a jitter retry —
the standard recipe for small, well-conditioned exact GPs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError

#: Hard cap on training points an exact GP will keep (O(n^3) fit).
MAX_GP_POINTS = 512

#: Relative noise floor added to the kernel diagonal (fraction of the
#: signal variance); measured wall times are noisy, so the default is
#: deliberately not tiny.
DEFAULT_NOISE = 1e-2

_JITTERS = (0.0, 1e-10, 1e-8, 1e-6, 1e-4)


def _median_heuristic(X: np.ndarray) -> float:
    """Median pairwise euclidean distance of (standardized) rows.

    The classic default length scale: about half the points fall within
    one length scale of each other, so the kernel is neither a delta
    spike (interpolation-only) nor flat (global mean).
    """
    n = X.shape[0]
    if n < 2:
        return 1.0
    d2 = np.sum((X[:, None, :] - X[None, :, :]) ** 2, axis=-1)
    upper = d2[np.triu_indices(n, k=1)]
    med = float(np.sqrt(np.median(upper)))
    return med if med > 0 else 1.0


class GPModel:
    """Exact RBF-kernel GP regression on a small training set.

    Drop-in alongside :class:`repro.model.regression.FittedModel` for
    the prediction surface (``feature_names``, ``predict``,
    ``predict_one``, ``predict_batch``, ``precision_error_pct``) plus
    the GP extras (``predict_with_std``, ``to_dict``/``from_dict``).
    """

    def __init__(
        self,
        feature_names: Sequence[str],
        X: np.ndarray,
        y: np.ndarray,
        length_scale: Optional[float] = None,
        noise: float = DEFAULT_NOISE,
    ) -> None:
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ModelError(
                f"X {X.shape} and y {y.shape} disagree on sample count"
            )
        if X.shape[0] < 2:
            raise ModelError("a GP needs at least 2 training points")
        if X.shape[1] != len(feature_names):
            raise ModelError(
                f"{len(feature_names)} names for {X.shape[1]} feature columns"
            )
        if noise <= 0:
            raise ModelError(f"noise must be positive, got {noise}")
        if X.shape[0] > MAX_GP_POINTS:
            # Deterministic thinning: evenly spaced rows keep the
            # sample spread without an RNG (reproducible across runs).
            idx = np.linspace(0, X.shape[0] - 1, MAX_GP_POINTS).round()
            idx = np.unique(idx.astype(np.intp))
            X, y = X[idx], y[idx]

        self.feature_names: List[str] = [str(n) for n in feature_names]
        self._X_raw = X.copy()
        self._y_raw = y.copy()
        self.noise = float(noise)

        # Standardize features; constant columns scale by 1 (stay 0).
        self._x_mean = X.mean(axis=0)
        x_std = X.std(axis=0)
        self._x_std = np.where(x_std > 0, x_std, 1.0)
        Xs = (X - self._x_mean) / self._x_std

        self._y_mean = float(y.mean())
        y_std = float(y.std())
        self._y_std = y_std if y_std > 0 else 1.0
        ys = (y - self._y_mean) / self._y_std

        self.length_scale = float(
            length_scale if length_scale is not None else _median_heuristic(Xs)
        )
        if self.length_scale <= 0:
            raise ModelError(
                f"length_scale must be positive, got {self.length_scale}"
            )

        K = self._kernel(Xs, Xs)
        n = K.shape[0]
        last_err: Optional[Exception] = None
        for jitter in _JITTERS:
            try:
                self._chol = np.linalg.cholesky(
                    K + (self.noise + jitter) * np.eye(n)
                )
                break
            except np.linalg.LinAlgError as err:  # pragma: no cover - rare
                last_err = err
        else:  # pragma: no cover - needs a pathological kernel
            raise ModelError(f"GP kernel not positive definite: {last_err}")
        self._Xs = Xs
        self._alpha = np.linalg.solve(
            self._chol.T, np.linalg.solve(self._chol, ys)
        )

    # ---- kernel ------------------------------------------------------
    def _kernel(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        d2 = (
            np.sum(A**2, axis=1)[:, None]
            + np.sum(B**2, axis=1)[None, :]
            - 2.0 * (A @ B.T)
        )
        return np.exp(-0.5 * np.maximum(d2, 0.0) / self.length_scale**2)

    # ---- prediction --------------------------------------------------
    def _standardize(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != len(self.feature_names):
            raise ModelError(
                f"expected {len(self.feature_names)} features, got {X.shape[1]}"
            )
        return (X - self._x_mean) / self._x_std

    def predict(self, X: np.ndarray) -> np.ndarray:
        Ks = self._kernel(self._standardize(X), self._Xs)
        return Ks @ self._alpha * self._y_std + self._y_mean

    def predict_one(self, x: Sequence[float]) -> float:
        return float(self.predict(np.asarray(x, dtype=np.float64)[None, :])[0])

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ModelError(f"X must be 2-D, got shape {X.shape}")
        return self.predict(X)

    def predict_with_std(
        self, X: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation per query row.

        The std is the model's own uncertainty — small near training
        points, approaching the prior far from them — which is what UCB
        routing and shadow gating weigh against the point estimate.
        """
        Xs = self._standardize(X)
        Ks = self._kernel(Xs, self._Xs)
        mean = Ks @ self._alpha * self._y_std + self._y_mean
        v = np.linalg.solve(self._chol, Ks.T)
        var = 1.0 + self.noise - np.sum(v**2, axis=0)
        std = np.sqrt(np.maximum(var, 0.0)) * self._y_std
        return mean, std

    def precision_error_pct(self, X: np.ndarray, y: np.ndarray) -> float:
        """The paper's precision metric over held-out pairs."""
        y = np.asarray(y, dtype=np.float64)
        if np.any(y <= 0):
            raise ModelError("actual times must be positive")
        pred = self.predict(X)
        return float(np.mean(np.abs(y - pred) / y) * 100.0)

    @property
    def n_train(self) -> int:
        return int(self._Xs.shape[0])

    # ---- persistence -------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-friendly state: the (possibly thinned) training set and
        hyperparameters — refitting from these is exact."""
        return {
            "kind": "gp",
            "feature_names": list(self.feature_names),
            "X": self._X_raw.tolist(),
            "y": self._y_raw.tolist(),
            "length_scale": self.length_scale,
            "noise": self.noise,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GPModel":
        try:
            return cls(
                feature_names=payload["feature_names"],
                X=np.asarray(payload["X"], dtype=np.float64),
                y=np.asarray(payload["y"], dtype=np.float64),
                length_scale=float(payload["length_scale"]),
                noise=float(payload["noise"]),
            )
        except (KeyError, TypeError, ValueError) as err:
            raise ModelError(f"bad GP payload: {err}") from err
