"""Network serving subsystem: the sharded asyncio front end.

The in-process :class:`~repro.runtime.service.TransposeService` behind
a real protocol: a compact length-prefixed codec over raw TCP
(:mod:`~repro.serving.codec`), plan-content-key routing through a
consistent-hash ring (:mod:`~repro.serving.ring`) so each replica's
bounded caches stay hot, admission control with per-tenant quotas and
typed load shedding (:mod:`~repro.serving.admission`), graceful drain,
and a pooled retrying client (:mod:`~repro.serving.client`).

The data path is zero-copy by default: scatter-gather frame emission
(:func:`~repro.serving.codec.pack_frame_parts` +
:func:`~repro.serving.codec.write_parts`, which hands each tensor
memoryview to the transport individually so the socket sends straight
from the source array), ``buffer_factory`` decoding straight into
arena leases server-side, and ``out=`` execution into the egress
lease — tensor bytes are touched once per direction, with
per-connection :class:`~repro.serving.codec.CodecStats` proving it.

See ``docs/serving.md`` for the wire protocol and semantics;
``benchmarks/bench_serving_load.py`` is the million-request load
generator that produces ``results/serving_load.json``.
"""

from __future__ import annotations

from repro.serving.admission import AdmissionController, TokenBucket
from repro.serving.client import ServingClient, exception_for
from repro.serving.codec import (
    DEFAULT_MAX_FRAME_BYTES,
    CodecStats,
    FrameTooLargeError,
    decode,
    decode_frame,
    encode,
    encode_parts,
    pack_frame,
    pack_frame_parts,
    read_frame,
    write_parts,
)
from repro.serving.ring import HashRing
from repro.serving.server import (
    PROTOCOL_VERSION,
    ReplyTooLargeError,
    ServingServer,
    error_code_of,
)

__all__ = [
    "ServingServer",
    "ServingClient",
    "HashRing",
    "AdmissionController",
    "TokenBucket",
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "CodecStats",
    "FrameTooLargeError",
    "ReplyTooLargeError",
    "encode",
    "encode_parts",
    "decode",
    "pack_frame",
    "pack_frame_parts",
    "decode_frame",
    "read_frame",
    "write_parts",
    "error_code_of",
    "exception_for",
]
