"""Figs. 6 and 7 reproduction: all 720 permutations of a 6D tensor with
every extent 16 — repeated-use (Fig. 6) and single-use (Fig. 7).

Prints per-scaled-rank mean bandwidth for TTLG, cuTT-heuristic,
cuTT-measure, and TTC (repeated use; TTC is omitted from single use as
in the paper), plus an ASCII rendering of the 720-case series, and
asserts the charts' qualitative shape.
"""

import numpy as np

from conftest import render_sweep, write_result

EXTENT = 16


def _series(sweep, scenario, name):
    return np.array([r[name] for r in sweep.bandwidths(scenario)])


def test_fig6_repeated_use(benchmark, sweep_factory, libraries):
    sweep = sweep_factory(EXTENT)
    text = render_sweep(
        sweep, "repeated", "Fig. 6 — 6D tensor (all 16), repeated use"
    )
    print(text)
    write_result("fig6_6d_all16_repeated", text)

    ttlg = _series(sweep, "repeated", "TTLG")
    cutt_m = _series(sweep, "repeated", "cuTT Measure")
    cutt_h = _series(sweep, "repeated", "cuTT Heuristic")
    ttc = _series(sweep, "repeated", "TTC")
    # Paper shape: TTLG outperforms cuTT-measure for most cases; measure
    # >= heuristic; TTC slowest of the library approaches.
    assert np.mean(ttlg >= cutt_m * 0.99) > 0.7
    assert np.mean(cutt_m >= cutt_h * 0.99) > 0.95
    assert np.mean(ttc <= cutt_m * 1.01) > 0.9
    assert 180 < ttlg.max() < 245  # peak ~200-230 GB/s

    case = sweep.cases[min(300, len(sweep.cases) - 1)]
    benchmark(lambda: libraries[0].plan(case.dims, case.perm))


def test_fig7_single_use(benchmark, sweep_factory, libraries):
    sweep = sweep_factory(EXTENT)
    text = render_sweep(
        sweep, "single", "Fig. 7 — 6D tensor (all 16), single use"
    )
    print(text)
    write_result("fig7_6d_all16_single", text)

    ttlg_rep = _series(sweep, "repeated", "TTLG")
    ttlg = _series(sweep, "single", "TTLG")
    cutt_h = _series(sweep, "single", "cuTT Heuristic")
    cutt_m = _series(sweep, "single", "cuTT Measure")
    # Paper shape: TTLG peak drops from ~200+ to ~130-ish; cuTT-measure
    # collapses (its plan executes every candidate).
    assert ttlg.max() < 0.85 * ttlg_rep.max()
    assert np.mean(cutt_m < ttlg) > 0.95
    assert np.mean(cutt_m < cutt_h) > 0.95

    case = sweep.cases[min(300, len(sweep.cases) - 1)]
    benchmark(lambda: libraries[2].plan(case.dims, case.perm))
