"""Tests for the comparator libraries (cuTT, TTC) and the paper's
qualitative performance relationships."""

import numpy as np
import pytest

from repro.baselines import (
    ALL_LIBRARIES,
    CuttHeuristic,
    CuttMeasure,
    NaiveLibrary,
    TTC,
    TTLG,
)
from repro.baselines.cutt import cutt_candidates, mwp_cwp_estimate
from repro.baselines.ttc import CODEGEN_TIME_S
from repro.core.fusion import fuse_indices
from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.taxonomy import Schema
from repro.gpusim.spec import KEPLER_K40C
from repro.kernels.common import reference_transpose
from repro.model.pretrained import oracle_predictor


@pytest.fixture(scope="module")
def libs():
    return {
        "ttlg": TTLG(predictor=oracle_predictor()),
        "cutt_h": CuttHeuristic(),
        "cutt_m": CuttMeasure(),
        "ttc": TTC(),
        "naive": NaiveLibrary(),
    }


class TestPlansExecuteCorrectly:
    @pytest.mark.parametrize(
        "dims,perm",
        [
            ((8, 2, 8, 8), (2, 1, 3, 0)),
            ((16, 16, 16), (2, 1, 0)),
            ((8, 12, 10), (0, 2, 1)),
            ((6, 5, 7, 4), (3, 0, 2, 1)),
        ],
    )
    def test_all_libraries(self, libs, dims, perm, rng):
        layout, p = TensorLayout(dims), Permutation(perm)
        src = rng.standard_normal(layout.volume)
        ref = reference_transpose(src, layout, p)
        for lib in libs.values():
            plan = lib.plan(dims, perm)
            np.testing.assert_array_equal(plan.execute(src), ref)


class TestCuttStructure:
    def test_candidate_menu_nonempty(self):
        fused = fuse_indices(TensorLayout((16,) * 4), Permutation((3, 2, 1, 0)))
        cands = cutt_candidates(fused.layout, fused.perm, KEPLER_K40C, 8)
        assert cands

    def test_tiled_present_for_non_matching_fvi(self):
        fused = fuse_indices(TensorLayout((64, 5, 64)), Permutation((2, 1, 0)))
        cands = cutt_candidates(fused.layout, fused.perm, KEPLER_K40C, 8)
        assert any(k.schema is Schema.ORTHOGONAL_DISTINCT for k in cands)

    def test_packed_copy_for_matching_fvi(self):
        fused = fuse_indices(
            TensorLayout((64, 5, 7)), Permutation((0, 2, 1))
        )
        cands = cutt_candidates(fused.layout, fused.perm, KEPLER_K40C, 8)
        assert any(k.schema is Schema.FVI_MATCH_LARGE for k in cands)

    def test_heuristic_estimate_positive(self):
        fused = fuse_indices(TensorLayout((16,) * 4), Permutation((3, 2, 1, 0)))
        for k in cutt_candidates(fused.layout, fused.perm, KEPLER_K40C, 8):
            assert mwp_cwp_estimate(k, KEPLER_K40C) > 0

    def test_measure_plan_cost_includes_executions(self, libs):
        dims, perm = (16,) * 6, (5, 4, 3, 2, 1, 0)
        pm = libs["cutt_m"].plan(dims, perm)
        ph = libs["cutt_h"].plan(dims, perm)
        # Measure mode executes every candidate: plan >> heuristic plan.
        assert pm.plan_time > 5 * ph.plan_time

    def test_measure_never_slower_than_heuristic(self, libs):
        """Paper: 'cuTT measure ... always better than cuTT-heuristic'
        (same menu, measured selection)."""
        for perm in [(5, 4, 3, 2, 1, 0), (4, 1, 2, 5, 3, 0), (1, 0, 3, 2, 5, 4)]:
            tm = libs["cutt_m"].plan((16,) * 6, perm).kernel_time()
            th = libs["cutt_h"].plan((16,) * 6, perm).kernel_time()
            assert tm <= th * 1.02  # jitter tolerance


class TestTtcStructure:
    def test_offline_codegen_time_reported(self, libs):
        plan = libs["ttc"].plan((16,) * 4, (3, 2, 1, 0))
        assert plan.offline_time == CODEGEN_TIME_S

    def test_online_plan_is_cheap(self, libs):
        plan = libs["ttc"].plan((16,) * 4, (3, 2, 1, 0))
        assert plan.plan_time <= 1e-3

    def test_single_dim_tiling_only(self, libs):
        """TTC never combines dims: its tiled kernel uses bare FVI dims."""
        plan = libs["ttc"].plan((16,) * 6, (5, 4, 3, 2, 1, 0))
        k = plan.kernel
        if k.schema is Schema.ORTHOGONAL_DISTINCT:
            assert k.A == 16 and k.B == 16


class TestPaperShapes:
    """The qualitative relationships the paper's charts show."""

    def test_repeated_use_ordering_6d_reversal(self, libs):
        """Fig. 6/8/10 shape: TTLG >= cuTT-measure >= cuTT-heuristic
        and TTC at/below cuTT-heuristic on small-extent 6D tensors."""
        for extent in (15, 16, 17):
            dims, perm = (extent,) * 6, (5, 4, 3, 2, 1, 0)
            bw = {
                name: lib.plan(dims, perm).bandwidth_gbps()
                for name, lib in libs.items()
            }
            assert bw["ttlg"] >= bw["cutt_m"] * 0.98
            assert bw["cutt_m"] >= bw["cutt_h"] * 0.98
            assert bw["ttc"] <= bw["cutt_m"] * 1.02
            assert bw["naive"] < bw["ttlg"]

    def test_extent_16_beats_15_and_17(self, libs):
        """Warp-aligned extents achieve higher bandwidth."""
        perm = (5, 4, 3, 2, 1, 0)
        bw = {
            e: libs["ttlg"].plan((e,) * 6, perm).bandwidth_gbps()
            for e in (15, 16, 17)
        }
        assert bw[16] > bw[15]
        assert bw[16] > bw[17]

    def test_single_use_cutt_measure_craters(self, libs):
        """Fig. 7/9/11: cuTT-measure single-use far below TTLG."""
        dims, perm = (16,) * 6, (5, 4, 3, 2, 1, 0)
        ttlg = libs["ttlg"].plan(dims, perm).bandwidth_gbps(include_plan=True)
        cutt = libs["cutt_m"].plan(dims, perm).bandwidth_gbps(include_plan=True)
        assert cutt < ttlg / 3

    def test_single_use_drop_for_ttlg(self, libs):
        """TTLG's own single-use bandwidth drops vs repeated use
        (peak ~200 -> ~130 in the paper)."""
        dims, perm = (16,) * 6, (5, 4, 3, 2, 1, 0)
        plan = libs["ttlg"].plan(dims, perm)
        rep = plan.bandwidth_gbps()
        single = plan.bandwidth_gbps(include_plan=True)
        assert 0.4 * rep < single < 0.9 * rep

    def test_ttlg_peak_bandwidth_band(self, libs):
        """Peak repeated-use bandwidth lands in the paper's ~200-230
        GB/s region for the friendliest cases."""
        bw = libs["ttlg"].plan((16,) * 6, (0, 2, 5, 1, 4, 3)).bandwidth_gbps()
        assert 180 < bw < 240

    def test_ttc_closer_on_large_extents(self, libs):
        """Fig. 14 vs Fig. 6: TTC's deficit shrinks when extents exceed
        the warp size (its single-dim tiles stop hurting)."""
        small = (16,) * 6
        big = (4096, 6144)
        perm6, perm2 = (5, 4, 3, 2, 1, 0), (1, 0)
        ratio_small = (
            libs["ttc"].plan(small, perm6).bandwidth_gbps()
            / libs["ttlg"].plan(small, perm6).bandwidth_gbps()
        )
        ratio_big = (
            libs["ttc"].plan(big, perm2).bandwidth_gbps()
            / libs["ttlg"].plan(big, perm2).bandwidth_gbps()
        )
        assert ratio_big > ratio_small

    def test_amortization_crossover_fig12(self, libs):
        """Fig. 12: at one call TTLG beats cuTT-measure by a lot; with
        thousands of calls the gap closes."""
        dims, perm = (16,) * 6, (4, 1, 2, 5, 3, 0)
        t = libs["ttlg"].plan(dims, perm)
        c = libs["cutt_m"].plan(dims, perm)
        one = t.bandwidth_gbps(1, True) / c.bandwidth_gbps(1, True)
        many = t.bandwidth_gbps(4096, True) / c.bandwidth_gbps(4096, True)
        assert one > 2.0
        assert many < 0.5 * one  # amortization closes most of the gap
