"""Index fusion (Sec. III / Fig. 3 "index fusion" box).

Indices that occur consecutively *and in the same order* in both the
input and the output tensor behave as a single longer index for the
purposes of transposition: fusing them never changes the data movement
but reduces the effective ("scaled") rank.  Example from the paper: for
``[i0, i1, i2, i3] => [i3, i1, i2, i0]``, ``i1`` and ``i2`` fuse, giving
a rank-3 problem with the middle extent ``|i1| * |i2|``.

The paper's 720-permutation charts group results by this *scaled rank*
(their red staircase lines); ranks 1 and 2 arise from rank-6 inputs whose
permutations fuse heavily.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation


@dataclass(frozen=True)
class FusionResult:
    """A fused transposition problem plus the bookkeeping to undo it.

    Attributes
    ----------
    layout:
        Fused input layout (extents are products over each fused group).
    perm:
        Fused permutation (same convention as the original).
    groups:
        For each fused input dimension, the tuple of original input
        dimensions it comprises, in fastest-to-slowest order.
    """

    layout: TensorLayout
    perm: Permutation
    groups: Tuple[Tuple[int, ...], ...]

    @property
    def scaled_rank(self) -> int:
        return self.layout.rank

    def original_dims_of(self, fused_dim: int) -> Tuple[int, ...]:
        return self.groups[fused_dim]


def fuse_indices(layout: TensorLayout, perm: Permutation) -> FusionResult:
    """Fuse all fusible index groups of a transposition.

    Two adjacent input dimensions ``j`` and ``j+1`` fuse iff they are also
    adjacent, in the same order, in the output — i.e. the output position
    of ``j+1`` is one greater than that of ``j``.

    The identity permutation fuses to a single rank-1 "copy" problem.
    Dimensions of extent 1 are degenerate in every position, so they are
    absorbed into a neighbouring group first (an extent-1 index never
    constrains data movement).
    """
    if perm.rank != layout.rank:
        raise ValueError(
            f"permutation rank {perm.rank} does not match layout rank "
            f"{layout.rank}"
        )
    dims = layout.dims
    rank = layout.rank

    # Drop extent-1 dimensions outright (keeping at least one dim).
    keep = [j for j in range(rank) if dims[j] > 1]
    if not keep:
        keep = [0]
    if len(keep) < rank:
        # Renumber the surviving input dims and rebuild the permutation.
        renumber = {j: t for t, j in enumerate(keep)}
        kept_out = [j for j in perm.mapping if j in renumber]
        sub_layout = TensorLayout([dims[j] for j in keep])
        sub_perm = Permutation([renumber[j] for j in kept_out])
        inner = fuse_indices(sub_layout, sub_perm)
        # Map fused groups back to original dim ids.
        groups = tuple(
            tuple(keep[t] for t in grp) for grp in inner.groups
        )
        return FusionResult(layout=inner.layout, perm=inner.perm, groups=groups)

    # Output position of each input dimension.
    out_pos = [0] * rank
    for i, j in enumerate(perm.mapping):
        out_pos[j] = i

    # Build maximal fusible runs over input order.
    runs: List[List[int]] = [[0]]
    for j in range(1, rank):
        if out_pos[j] == out_pos[j - 1] + 1:
            runs[-1].append(j)
        else:
            runs.append([j])

    fused_dims = [math.prod(dims[j] for j in run) for run in runs]
    # Order the runs as they appear in the output to build the fused perm.
    order = sorted(range(len(runs)), key=lambda t: out_pos[runs[t][0]])
    fused_perm = Permutation(order)
    return FusionResult(
        layout=TensorLayout(fused_dims),
        perm=fused_perm,
        groups=tuple(tuple(run) for run in runs),
    )


def scaled_rank(dims: Sequence[int], perm: Sequence[int]) -> int:
    """Rank of the transposition after index fusion (paper's staircase)."""
    return fuse_indices(TensorLayout(dims), Permutation(perm)).scaled_rank
