"""Transaction counters and launch geometry.

:class:`KernelCounters` is the common currency between the kernels (which
produce counts, either analytically per Table I of the paper or from the
detailed engine) and the cost model (which converts counts to seconds).

All DRAM counts are in *transactions* of ``DeviceSpec.transaction_bytes``
(128 B), with partial transactions counted as whole ones — exactly the
``ceil`` convention of the paper's Section IV-C analysis.  Shared-memory
counts are warp-level accesses; bank conflicts are carried separately as
the total number of *extra* serialized cycles they induce.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class LaunchGeometry:
    """Grid/block shape of a simulated kernel launch."""

    num_blocks: int
    threads_per_block: int
    shared_mem_per_block: int = 0
    registers_per_thread: int = 32

    def __post_init__(self) -> None:
        if self.num_blocks < 0:
            raise ValueError(f"num_blocks must be >= 0, got {self.num_blocks}")
        if self.threads_per_block <= 0:
            raise ValueError(
                f"threads_per_block must be positive, got {self.threads_per_block}"
            )
        if self.shared_mem_per_block < 0:
            raise ValueError("shared_mem_per_block must be >= 0")

    @property
    def total_threads(self) -> int:
        return self.num_blocks * self.threads_per_block

    def warps_per_block(self, warp_size: int = 32) -> int:
        return -(-self.threads_per_block // warp_size)


@dataclass
class KernelCounters:
    """Aggregate activity counters for one kernel launch.

    ``dram_*_tx`` follow the paper's Table I quantities (C1/C2/C3/C3');
    ``*_useful_bytes`` track how much of each transaction actually carried
    payload, so the cost model can penalize over-fetch from unaligned or
    short rows.  ``lane_slots``/``active_lanes`` measure warp (SIMT lane)
    efficiency — the "idle threads in boundary tiles" effect that the
    paper's *Cycles* feature captures.
    """

    # Global memory (DRAM), 128 B transaction granularity.
    dram_ld_tx: int = 0
    dram_st_tx: int = 0
    dram_ld_useful_bytes: int = 0
    dram_st_useful_bytes: int = 0

    # Warp-level global LD/ST instructions issued.
    warp_ld_accesses: int = 0
    warp_st_accesses: int = 0

    # SIMT lane occupancy across all global accesses.
    lane_slots: int = 0
    active_lanes: int = 0

    # Shared memory: warp-level accesses plus extra serialized cycles
    # caused by bank conflicts (0 when conflict-free).
    smem_ld_accesses: int = 0
    smem_st_accesses: int = 0
    smem_conflict_cycles: int = 0

    # Texture memory (offset arrays): warp accesses and the subset that
    # misses the texture cache and costs a DRAM transaction.
    tex_accesses: int = 0
    tex_miss_tx: int = 0

    # Instruction mix.
    special_ops: int = 0  # integer mod/div -> MUFU (Sec. V "Special Instr")
    alu_ops: int = 0

    # ------------------------------------------------------------------
    @property
    def dram_tx(self) -> int:
        return self.dram_ld_tx + self.dram_st_tx

    @property
    def dram_bytes_moved(self) -> int:
        """Bytes the memory system actually transfers (incl. overfetch)."""
        return self.dram_tx * 128

    @property
    def useful_bytes(self) -> int:
        return self.dram_ld_useful_bytes + self.dram_st_useful_bytes

    @property
    def warp_global_accesses(self) -> int:
        return self.warp_ld_accesses + self.warp_st_accesses

    @property
    def smem_accesses(self) -> int:
        return self.smem_ld_accesses + self.smem_st_accesses

    @property
    def lane_efficiency(self) -> float:
        """Fraction of SIMT lane slots doing useful work (1.0 if no data)."""
        if self.lane_slots == 0:
            return 1.0
        return self.active_lanes / self.lane_slots

    @property
    def transaction_efficiency(self) -> float:
        """Useful payload per byte the DRAM system moved (1.0 if no data)."""
        moved = self.dram_bytes_moved
        if moved == 0:
            return 1.0
        return min(1.0, self.useful_bytes / moved)

    # ------------------------------------------------------------------
    def merge(self, other: "KernelCounters") -> "KernelCounters":
        """Return the elementwise sum of two counter sets."""
        out = KernelCounters()
        for f in fields(KernelCounters):
            setattr(out, f.name, getattr(self, f.name) + getattr(other, f.name))
        return out

    def __iadd__(self, other: "KernelCounters") -> "KernelCounters":
        for f in fields(KernelCounters):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def scaled(self, factor: int) -> "KernelCounters":
        """Return counters multiplied by an integer repetition factor.

        Used by kernels that compute exact counts for one representative
        slice/block and replicate across identical blocks.
        """
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        out = KernelCounters()
        for f in fields(KernelCounters):
            setattr(out, f.name, getattr(self, f.name) * factor)
        return out

    def validate(self) -> None:
        """Raise ``ValueError`` on internally inconsistent counts."""
        for f in fields(KernelCounters):
            if getattr(self, f.name) < 0:
                raise ValueError(f"counter {f.name} is negative")
        if self.active_lanes > self.lane_slots:
            raise ValueError("active_lanes exceeds lane_slots")
        if self.tex_miss_tx > self.tex_accesses:
            raise ValueError("tex_miss_tx exceeds tex_accesses")
