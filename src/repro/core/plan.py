"""Transposition planning: taxonomy + candidate enumeration + selection.

A :class:`TransposePlan` binds a problem to the model-chosen kernel and
records everything the evaluation needs: the fused problem, the taxonomy
decision, the predicted time, how many candidates the search evaluated
(which determines the simulated planning overhead — the single-use
scenario of Figs. 7/9/11), and the coarsening choice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.coarsening import choose_coarsening_for_kernel
from repro.core.fusion import FusionResult, fuse_indices
from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.slices import (
    CandidateDesc,
    choose_best,
    choose_best_two_phase,
    enumerate_orthogonal_arbitrary,
    enumerate_orthogonal_arbitrary_descs,
    enumerate_orthogonal_distinct,
    enumerate_orthogonal_distinct_descs,
)
from repro.core.taxonomy import Schema, TaxonomyDecision, select_schema
from repro.errors import PlanError
from repro.gpusim.cost import CostModel
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec
from repro.kernels.base import TransposeKernel
from repro.kernels.fvi_match_large import FviMatchLargeKernel
from repro.kernels.fvi_match_small import FviMatchSmallKernel
from repro.kernels.orthogonal_arbitrary import OrthogonalArbitraryKernel

Predictor = Callable[[TransposeKernel], float]


@dataclass(frozen=True)
class TransposePlan:
    """An executable, costed transposition plan."""

    layout: TensorLayout
    perm: Permutation
    elem_bytes: int
    fused: FusionResult
    decision: TaxonomyDecision
    kernel: TransposeKernel
    predicted_time: float
    num_candidates: int
    coarsening: Optional[Tuple[int, int]]
    plan_time: float

    @property
    def schema(self) -> Schema:
        return self.kernel.schema

    def execute(
        self, src_flat: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Move linearized data (fused and unfused linearizations agree).

        Runs through the kernel's compiled executor program (built once
        per problem, cached process-wide — see ``docs/executor.md``).
        With ``out`` the result is written in place, skipping the
        per-call allocation.
        """
        return self.kernel.execute(src_flat, out=out)

    def executor(self):
        """The plan's compiled :class:`~repro.kernels.executor
        .ExecutorProgram` (compiling and caching on first use)."""
        return self.kernel.executor()

    def simulated_time(self, cost_model: Optional[CostModel] = None) -> float:
        """Simulated kernel execution time (repeated-use metric)."""
        return self.kernel.simulated_time(cost_model)

    def bandwidth_gbps(
        self,
        repeats: int = 1,
        include_plan: bool = False,
        cost_model: Optional[CostModel] = None,
    ) -> float:
        """The paper's achieved-bandwidth metric over ``repeats`` calls.

        ``include_plan`` adds the one-time planning cost, amortized over
        the repeats — Fig. 12's experiment in one call.
        """
        cm = cost_model if cost_model is not None else CostModel(self.kernel.spec)
        t = self.simulated_time(cm) * repeats
        if include_plan:
            t += self.plan_time
        return cm.bandwidth_gbps(self.layout.volume * repeats, self.elem_bytes, t)


def fvi_small_candidates(
    layout: TensorLayout,
    perm: Permutation,
    spec: DeviceSpec,
    elem_bytes: int,
) -> List[TransposeKernel]:
    """Admissible blocking factors for the FVI-Match-Small kernel."""
    out: List[TransposeKernel] = []
    n0 = layout.dims[0]
    ws = spec.warp_size
    max_b = min(ws, spec.max_threads_per_block // ws)
    # Always include the smallest b that fills a warp's run, plus
    # power-of-two sweeps up to the shared-memory limit.
    bs = sorted({min(max_b, max(1, math.ceil(ws / n0))), 2, 4, 8, 16, 32})
    for b in bs:
        if b > max_b:
            continue
        smem = b * (b * n0 + ws) * elem_bytes
        if smem > spec.shared_mem_per_sm:
            continue
        try:
            out.append(FviMatchSmallKernel(layout, perm, b, elem_bytes, spec))
        except Exception:
            continue
    return out


def candidates_for(
    layout: TensorLayout,
    perm: Permutation,
    decision: TaxonomyDecision,
    spec: DeviceSpec,
    elem_bytes: int,
) -> List[TransposeKernel]:
    """Candidate kernels for every schema the taxonomy allows."""
    out: List[TransposeKernel] = []
    for schema in decision.all_candidates:
        if schema is Schema.FVI_MATCH_LARGE:
            out.append(FviMatchLargeKernel(layout, perm, elem_bytes, spec))
        elif schema is Schema.FVI_MATCH_SMALL:
            out.extend(fvi_small_candidates(layout, perm, spec, elem_bytes))
        elif schema is Schema.ORTHOGONAL_DISTINCT:
            out.extend(
                enumerate_orthogonal_distinct(layout, perm, spec, elem_bytes)
            )
        elif schema is Schema.ORTHOGONAL_ARBITRARY:
            out.extend(
                enumerate_orthogonal_arbitrary(layout, perm, spec, elem_bytes)
            )
    return out


def candidate_descriptors(
    layout: TensorLayout,
    perm: Permutation,
    decision: TaxonomyDecision,
    spec: DeviceSpec,
    elem_bytes: int,
) -> List[CandidateDesc]:
    """Phase-1 descriptors for every schema the taxonomy allows.

    Mirrors :func:`candidates_for` one to one: the orthogonal schemas
    enumerate without constructing kernels, while the FVI kernels —
    O(1) to build — are constructed eagerly and wrapped.
    """
    out: List[CandidateDesc] = []
    for schema in decision.all_candidates:
        if schema is Schema.FVI_MATCH_LARGE:
            out.append(
                CandidateDesc(
                    schema=schema,
                    kernel=FviMatchLargeKernel(layout, perm, elem_bytes, spec),
                )
            )
        elif schema is Schema.FVI_MATCH_SMALL:
            out.extend(
                CandidateDesc(schema=schema, b=k.b, kernel=k)
                for k in fvi_small_candidates(layout, perm, spec, elem_bytes)
            )
        elif schema is Schema.ORTHOGONAL_DISTINCT:
            out.extend(
                enumerate_orthogonal_distinct_descs(
                    layout, perm, spec, elem_bytes
                )
            )
        elif schema is Schema.ORTHOGONAL_ARBITRARY:
            out.extend(
                enumerate_orthogonal_arbitrary_descs(
                    layout, perm, spec, elem_bytes
                )
            )
    return out


def make_plan(
    dims: Sequence[int],
    perm: Sequence[int],
    elem_bytes: int = 8,
    spec: DeviceSpec = KEPLER_K40C,
    predictor: Optional[Predictor] = None,
    search: str = "two_phase",
) -> TransposePlan:
    """Plan a transposition: fuse, classify, enumerate, select.

    ``predictor`` defaults to the shipped pretrained regression models
    (with the analytic cost model as fallback for unmodeled schemas).

    ``search`` picks the selection strategy: ``"two_phase"`` (default)
    enumerates lightweight descriptors, prunes on the analytic DRAM
    lower bound, batch-scores the survivors, and materializes only the
    winner; ``"eager"`` constructs and scores every candidate kernel
    (the reference path — both select the identical kernel).
    """
    layout = TensorLayout(dims)
    permutation = Permutation(perm)
    if search not in ("two_phase", "eager"):
        raise PlanError(f"unknown search strategy {search!r}")
    if predictor is None:
        from repro.model.pretrained import pretrained_predictor

        predictor = pretrained_predictor(spec)

    fused = fuse_indices(layout, permutation)
    decision = select_schema(fused.layout, fused.perm, warp_size=spec.warp_size)
    # Ties between schemas resolve toward the taxonomy's preference
    # order, matching the historical first-enumerated-wins selection.
    schema_rank = {s: i for i, s in enumerate(decision.all_candidates)}
    if search == "two_phase":
        descs = candidate_descriptors(
            fused.layout, fused.perm, decision, spec, elem_bytes
        )
        if not descs:
            raise PlanError(
                f"no candidate kernel for dims={tuple(dims)} perm={tuple(perm)}"
            )
        result = choose_best_two_phase(
            descs,
            fused.layout,
            fused.perm,
            spec,
            elem_bytes,
            predictor,
            schema_rank=schema_rank,
        )
    else:
        cands = candidates_for(
            fused.layout, fused.perm, decision, spec, elem_bytes
        )
        if not cands:
            raise PlanError(
                f"no candidate kernel for dims={tuple(dims)} perm={tuple(perm)}"
            )
        result = choose_best(cands, predictor, schema_rank=schema_rank)
    kernel = result.kernel

    coarsening = None
    if kernel.schema is not Schema.ORTHOGONAL_DISTINCT:
        coarsening = choose_coarsening_for_kernel(kernel, elem_bytes)
    if coarsening is not None and isinstance(kernel, OrthogonalArbitraryKernel):
        # Rebuild the chosen kernel with the coarsened grid and keep it
        # only if the model agrees (a big factor can cost occupancy —
        # the paper's caveat).
        try:
            coarse = OrthogonalArbitraryKernel(
                fused.layout,
                fused.perm,
                in_prefix=kernel.in_prefix,
                blockA=kernel.blockA,
                out_prefix=kernel.out_prefix,
                blockB=kernel.blockB,
                elem_bytes=elem_bytes,
                spec=spec,
                pad=kernel.pad,
                coarsen=coarsening,
            )
            if predictor(coarse) <= predictor(kernel):
                kernel = coarse
            else:
                coarsening = None
        except Exception:
            coarsening = None

    cm = CostModel(spec)
    return TransposePlan(
        layout=layout,
        perm=permutation,
        elem_bytes=elem_bytes,
        fused=fused,
        decision=decision,
        kernel=kernel,
        predicted_time=result.predicted_time,
        num_candidates=result.num_candidates,
        coarsening=coarsening,
        plan_time=cm.plan_time(result.num_candidates),
    )


def clear_plan_caches() -> None:
    """Drop the process-wide planning memoization.

    Forgets the geometry-keyed pad-search and offset caches shared
    across :class:`OrthogonalArbitraryKernel` instances and the memoized
    DRAM-transaction totals, restoring cold-start conditions for
    benchmarks; shipped model coefficients stay loaded (they are a
    fixed artifact, not per-problem state).
    """
    from repro.core.slices import clear_lower_bound_cache
    from repro.kernels.common import clear_dram_tx_cache
    from repro.kernels.orthogonal_arbitrary import clear_geometry_caches
    from repro.kernels.orthogonal_distinct import clear_feature_cache

    clear_geometry_caches()
    clear_dram_tx_cache()
    clear_feature_cache()
    clear_lower_bound_cache()
