"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without masking programming errors
(``TypeError`` etc. still propagate unwrapped).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro/TTLG library."""


class InvalidPermutationError(ReproError, ValueError):
    """A permutation is not a bijection over ``range(rank)``."""


class InvalidLayoutError(ReproError, ValueError):
    """Tensor extents/strides are malformed (non-positive extent, rank 0, ...)."""


class PlanError(ReproError, RuntimeError):
    """A transposition plan could not be constructed for the given problem."""


class SchemaError(PlanError):
    """A kernel was asked to handle a case outside its schema's preconditions."""


class DeviceConfigError(ReproError, ValueError):
    """A simulated-device specification is inconsistent."""


class ModelError(ReproError, RuntimeError):
    """Performance-model training, loading, or prediction failed."""


class ContractionError(ReproError, ValueError):
    """A TTGT contraction specification is malformed or inconsistent."""


class ServingError(ReproError):
    """Base class for network-serving failures (see ``docs/serving.md``).

    Each concrete subclass maps 1:1 onto a wire error code, so a client
    receiving a typed error reply re-raises the same exception the
    server-side handler saw.
    """


class ProtocolError(ServingError, ValueError):
    """A wire frame or message violates the serving protocol (truncated
    frame, oversized frame, unknown tag/verb, malformed request)."""


class OverloadedError(ServingError, RuntimeError):
    """The server shed this request under admission control; back off
    and retry (the pooled client does this automatically)."""


class QuotaExceededError(OverloadedError):
    """The request's tenant exhausted its token-bucket quota."""


class DeadlineExceededError(ServingError, TimeoutError):
    """The request's deadline expired before (or while) it executed."""


class DrainingError(ServingError, RuntimeError):
    """The service/server is draining: intake is closed, inflight work
    is being flushed, and no new requests are accepted."""
