"""Unit tests for the FVI-Match kernels (Algs. 6 and 7)."""

import numpy as np
import pytest

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.taxonomy import Schema
from repro.errors import SchemaError
from repro.gpusim.engine import simulate_warp_accesses
from repro.gpusim.spec import KEPLER_K40C
from repro.kernels.fvi_match_large import FviMatchLargeKernel
from repro.kernels.fvi_match_small import FviMatchSmallKernel

from tests.helpers import assert_kernel_correct


def make_large(dims, perm, **kw):
    return FviMatchLargeKernel(TensorLayout(dims), Permutation(perm), **kw)


def make_small(dims, perm, b, **kw):
    return FviMatchSmallKernel(TensorLayout(dims), Permutation(perm), b, **kw)


class TestFviMatchLarge:
    @pytest.mark.parametrize(
        "dims,perm",
        [
            ((64, 8, 10, 6), (0, 3, 2, 1)),
            ((32, 5, 7), (0, 2, 1)),
            ((100, 4, 9), (0, 2, 1)),
            ((128,), (0,)),  # fused identity
        ],
    )
    def test_correct(self, dims, perm, rng):
        assert_kernel_correct(make_large(dims, perm), rng)

    def test_rejects_non_matching_fvi(self):
        with pytest.raises(SchemaError):
            make_large((64, 8), (1, 0))

    def test_schema_tag(self):
        assert make_large((64, 4), (0, 1)).schema is Schema.FVI_MATCH_LARGE

    def test_table1_c2_transactions(self):
        """Table I: C2 = ceil(N0*eb/128) per run, runs = rest volume —
        for float data, ceil(size(i0)/32) x prod(other extents)."""
        k = make_large((64, 8, 10), (0, 2, 1), elem_bytes=4)
        c = k.counters()
        assert c.dram_ld_tx == (64 * 4 // 128) * 8 * 10
        assert c.dram_st_tx == c.dram_ld_tx

    def test_no_shared_memory(self):
        c = make_large((64, 8, 10), (0, 2, 1)).counters()
        assert c.smem_accesses == 0
        assert c.tex_accesses == 0

    def test_analytic_matches_detailed(self):
        k = make_large((96, 6, 5), (0, 2, 1))
        ana = k.counters()
        det = simulate_warp_accesses(k.trace(), KEPLER_K40C)
        assert ana.dram_ld_tx == det.dram_ld_tx
        assert ana.dram_st_tx == det.dram_st_tx
        assert ana.warp_ld_accesses == det.warp_ld_accesses
        assert ana.active_lanes == det.active_lanes

    def test_chunking_keeps_grid_occupied(self):
        """A fused identity (single giant run) must still launch enough
        blocks to fill the device."""
        k = make_large((1 << 22,), (0,))
        assert k.launch_geometry.num_blocks >= 2 * KEPLER_K40C.block_slots

    def test_small_runs_one_block_each(self):
        k = make_large((64, 100, 100), (0, 2, 1))
        assert k.chunks_per_run == 1

    def test_partial_warp_lane_efficiency(self):
        """N0 = 48: each run needs two accesses, second half-empty."""
        c = make_large((48, 8, 8), (0, 2, 1)).counters()
        assert c.lane_efficiency == pytest.approx(48 / 64)


class TestFviMatchSmall:
    @pytest.mark.parametrize(
        "dims,perm,b",
        [
            ((8, 12, 10, 6), (0, 2, 1, 3), 4),
            ((8, 12, 10, 6), (0, 2, 1, 3), 3),
            ((16, 9, 7), (0, 2, 1), 2),
            ((4, 33, 17), (0, 2, 1), 8),
            ((2, 10, 10, 3), (0, 3, 1, 2), 5),
        ],
    )
    def test_correct(self, dims, perm, b, rng):
        assert_kernel_correct(make_small(dims, perm, b), rng)

    def test_rejects_large_fvi(self):
        with pytest.raises(SchemaError):
            make_small((32, 8, 8), (0, 2, 1), 4)

    def test_rejects_non_matching(self):
        with pytest.raises(SchemaError):
            make_small((8, 8, 8), (2, 1, 0), 4)

    def test_rejects_rank_two(self):
        with pytest.raises(SchemaError):
            make_small((8, 8), (0, 1), 4)

    def test_rejects_oversized_smem(self):
        with pytest.raises(SchemaError):
            make_small((31, 40, 40), (0, 2, 1), 32)

    def test_table1_c1_structure(self):
        """Table I: loads = stores, smem traffic mirrors global."""
        k = make_small((8, 12, 10, 6), (0, 2, 1, 3), 4)
        c = k.counters()
        assert c.smem_st_accesses == c.warp_ld_accesses
        assert c.smem_ld_accesses == c.warp_st_accesses
        assert c.tex_accesses == 0  # Table I: TM = 0 for this kernel

    def test_c1_formula_even_case(self):
        """b*N0 multiple of 32, extents divide b: C1 exactly
        ceil(size(i0)*b/32) * prod(other)/b (for floats)."""
        k = make_small((8, 12, 8, 6), (0, 2, 1, 3), b=4, elem_bytes=4)
        c = k.counters()
        expected = -(-8 * 4 * 4 // 128) * (12 * 8 * 6) // 4
        assert c.dram_ld_tx == expected

    def test_pad_gives_conflict_free_reads(self):
        k = make_small((8, 12, 10, 6), (0, 2, 1, 3), 4)
        assert k.smem_read_conflict_degree() == 1
        assert k.counters().smem_conflict_cycles == 0

    def test_analytic_close_to_detailed(self):
        k = make_small((8, 12, 10, 6), (0, 2, 1, 3), 4)
        ana = k.counters()
        det = simulate_warp_accesses(k.trace(), KEPLER_K40C)
        assert ana.dram_ld_tx == det.dram_ld_tx
        assert ana.dram_st_tx == det.dram_st_tx
        assert ana.warp_ld_accesses == det.warp_ld_accesses
        assert ana.warp_st_accesses == det.warp_st_accesses
        # Partial-bundle conflict estimates may differ slightly.
        assert ana.smem_conflict_cycles >= det.smem_conflict_cycles

    def test_features_present(self):
        f = make_small((8, 12, 10, 6), (0, 2, 1, 3), 4).features()
        for key in ("volume", "num_blocks", "slice_volume", "block_b"):
            assert key in f

    def test_larger_b_fewer_blocks(self):
        k2 = make_small((8, 16, 16), (0, 2, 1), 2)
        k8 = make_small((8, 16, 16), (0, 2, 1), 8)
        assert (
            k8.launch_geometry.num_blocks < k2.launch_geometry.num_blocks
        )
