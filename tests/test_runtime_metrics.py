"""Tests for the runtime metrics registry."""

import json
import threading

import pytest

from repro.runtime.metrics import (
    METRICS_FORMAT_VERSION,
    LatencyHistogram,
    MetricsRegistry,
)


class TestLatencyHistogram:
    def test_record_and_snapshot(self):
        h = LatencyHistogram()
        for v in (1e-6, 2e-6, 1e-3, 5.0):
            h.record(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum_s"] == pytest.approx(1e-6 + 2e-6 + 1e-3 + 5.0)
        assert snap["min_s"] == pytest.approx(1e-6)
        assert snap["max_s"] == pytest.approx(5.0)
        assert sum(snap["buckets"].values()) == 4

    def test_overflow_bucket(self):
        h = LatencyHistogram()
        h.record(1e4)  # far beyond the largest bound
        assert h.snapshot()["buckets"] == {"overflow": 1}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1.0)

    def test_empty_snapshot(self):
        snap = LatencyHistogram().snapshot()
        assert snap["count"] == 0
        assert snap["mean_s"] == 0.0
        assert snap["min_s"] == 0.0

    def test_reset(self):
        h = LatencyHistogram()
        h.record(1.0)
        h.reset()
        assert h.snapshot()["count"] == 0


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        m = MetricsRegistry()
        m.inc("a")
        m.inc("a", 4)
        m.set_gauge("depth", 3)
        m.max_gauge("peak", 2)
        m.max_gauge("peak", 1)  # lower: ignored
        assert m.counter("a") == 5
        assert m.counter("missing") == 0
        assert m.gauge("depth") == 3
        assert m.gauge("peak") == 2

    def test_observe_creates_histogram(self):
        m = MetricsRegistry()
        m.observe("lat", 1e-3)
        m.observe("lat", 2e-3)
        assert m.histogram("lat").count == 2
        assert m.histogram("other") is None

    def test_snapshot_shape(self):
        m = MetricsRegistry()
        m.inc("x")
        m.observe("lat", 0.5)
        snap = m.snapshot()
        assert snap["format_version"] == METRICS_FORMAT_VERSION
        assert snap["counters"] == {"x": 1}
        assert snap["histograms"]["lat"]["count"] == 1
        json.dumps(snap)  # JSON-serializable throughout

    def test_snapshot_and_reset_is_windowed(self):
        m = MetricsRegistry()
        m.inc("x", 7)
        first = m.snapshot(reset=True)
        second = m.snapshot()
        assert first["counters"]["x"] == 7
        assert second["counters"] == {}

    def test_concurrent_increments_lose_nothing(self):
        m = MetricsRegistry()
        n_threads, per_thread = 8, 500

        def work():
            for _ in range(per_thread):
                m.inc("n")
                m.observe("lat", 1e-6)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.counter("n") == n_threads * per_thread
        assert m.histogram("lat").count == n_threads * per_thread

    def test_save_and_load(self, tmp_path):
        m = MetricsRegistry()
        m.inc("served", 3)
        path = m.save(tmp_path / "metrics.json")
        payload = MetricsRegistry.load_snapshot(path)
        assert payload["counters"]["served"] == 3

    def test_load_rejects_bad_version(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"format_version": 999}))
        with pytest.raises(ValueError):
            MetricsRegistry.load_snapshot(p)
