"""The readinto wire transport and the zero-copy data path end to end.

Unit tests drive :class:`FrameConnection` over real loopback sockets
against a raw stream peer (so framing, error ordering, and hangup
semantics are exercised exactly as production sees them); the E2E class
covers what the load bench gates — bit-exact parity between codec
modes, ``REPLY_TOO_LARGE`` as a typed error, the tensor-byte ledger,
and lease hygiene across drain.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.model.pretrained import oracle_predictor
from repro.serving import ServingClient, ServingServer
from repro.serving.codec import (
    FrameTooLargeError,
    decode,
    pack_frame,
    read_frame,
)
from repro.serving.server import ReplyTooLargeError
from repro.serving.wire import FrameConnection

ORACLE = oracle_predictor()

DIMS, PERM = (6, 5, 4), (2, 0, 1)


class _Loopback:
    """One FrameConnection accepting from one raw stream peer."""

    def __init__(self, server, wire, reader, writer):
        self.server = server
        self.wire = wire
        self.reader = reader
        self.writer = writer

    async def close(self) -> None:
        self.writer.close()
        self.server.close()
        await self.server.wait_closed()


async def loopback(**wire_kwargs) -> _Loopback:
    loop = asyncio.get_running_loop()
    accepted: list = []
    wire_kwargs.setdefault("decoder", decode)
    server = await loop.create_server(
        lambda: FrameConnection(on_connect=accepted.append, **wire_kwargs),
        "127.0.0.1",
        0,
    )
    port = server.sockets[0].getsockname()[1]
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    while not accepted:  # the accept callback runs on the next tick
        await asyncio.sleep(0)
    return _Loopback(server, accepted[0], reader, writer)


class TestFrameConnection:
    def test_frames_decode_in_order_then_eof(self):
        async def run():
            lb = await loopback()
            lb.writer.write(pack_frame({"a": 1}) + pack_frame([1, 2, 3]))
            lb.writer.write_eof()
            assert await lb.wire.read_frame() == {"a": 1}
            assert await lb.wire.read_frame() == [1, 2, 3]
            with pytest.raises(EOFError):
                await lb.wire.read_frame()
            await lb.close()

        asyncio.run(run())

    def test_fragmented_delivery_reassembles(self):
        async def run():
            lb = await loopback()
            frame = pack_frame({"op": "execute", "payload": list(range(50))})
            for i in range(len(frame)):  # worst case: one byte per recv
                lb.writer.write(frame[i : i + 1])
                await lb.writer.drain()
            got = await lb.wire.read_frame()
            assert got["payload"] == list(range(50))
            await lb.close()

        asyncio.run(run())

    def test_oversized_prefix_is_frame_too_large(self):
        async def run():
            lb = await loopback(max_frame_bytes=64)
            lb.writer.write((65).to_bytes(4, "big"))
            with pytest.raises(FrameTooLargeError):
                await lb.wire.read_frame()
            await lb.close()

        asyncio.run(run())

    def test_empty_body_is_protocol_error(self):
        async def run():
            lb = await loopback()
            lb.writer.write((0).to_bytes(4, "big"))
            with pytest.raises(ProtocolError):
                await lb.wire.read_frame()
            await lb.close()

        asyncio.run(run())

    def test_decode_failure_is_protocol_error(self):
        async def run():
            lb = await loopback()
            lb.writer.write((1).to_bytes(4, "big") + b"\x99")
            with pytest.raises(ProtocolError, match="unknown wire tag"):
                await lb.wire.read_frame()
            await lb.close()

        asyncio.run(run())

    def test_good_frame_before_bad_one_still_delivers(self):
        async def run():
            lb = await loopback()
            lb.writer.write(pack_frame({"ok": True}))
            lb.writer.write((1).to_bytes(4, "big") + b"\x99")
            assert await lb.wire.read_frame() == {"ok": True}
            with pytest.raises(ProtocolError):
                await lb.wire.read_frame()
            await lb.close()

        asyncio.run(run())

    def test_mid_frame_hangup_is_protocol_error(self):
        async def run():
            lb = await loopback()
            lb.writer.write((10).to_bytes(4, "big") + b"abc")
            await lb.writer.drain()
            lb.writer.close()
            with pytest.raises(ProtocolError, match="inside a frame"):
                await lb.wire.read_frame()
            await lb.close()

        asyncio.run(run())

    def test_write_parts_bytes_on_the_wire(self):
        async def run():
            lb = await loopback()
            big = np.arange(48_000, dtype=np.uint8)  # above coalesce cap
            parts = [b"head", memoryview(big), b"tail"]
            want = b"head" + big.tobytes() + b"tail"
            lb.wire.write_parts(parts)
            await lb.wire.drain()
            assert await lb.reader.readexactly(len(want)) == want
            await lb.close()

        asyncio.run(run())

    def test_writer_surface_matches_streamwriter(self):
        async def run():
            lb = await loopback()
            assert not lb.wire.is_closing()
            assert lb.wire.get_extra_info("peername") is not None
            lb.wire.write(pack_frame(7))
            await lb.wire.drain()
            assert await read_frame(lb.reader) == 7
            lb.wire.close()
            await lb.wire.wait_closed()
            assert lb.wire.is_closing()
            await lb.close()

        asyncio.run(run())


def run_serving(coro_fn, **server_kwargs):
    async def main():
        kwargs = dict(replicas=2, num_streams=1, predictor=ORACLE)
        kwargs.update(server_kwargs)
        server = ServingServer(**kwargs)
        await server.start()
        try:
            return await coro_fn(server)
        finally:
            await server.close()

    return asyncio.run(main())


class TestDataPathEndToEnd:
    def test_codec_modes_are_bit_exact(self):
        rng = np.random.default_rng(11)
        src = rng.standard_normal(int(np.prod(DIMS)))
        outputs = {}
        for zero_copy in (True, False):

            async def scenario(server):
                async with ServingClient(
                    server.host, server.port, zero_copy=server.zero_copy
                ) as client:
                    result = await client.execute(DIMS, PERM, 8, payload=src)
                outputs[server.zero_copy] = np.asarray(result["output"])

            run_serving(scenario, zero_copy=zero_copy)
        np.testing.assert_array_equal(outputs[True], outputs[False])

    def test_zero_copy_ledger_and_lease_hygiene(self):
        rng = np.random.default_rng(12)
        src = rng.standard_normal(int(np.prod(DIMS)))

        async def scenario(server):
            async with ServingClient(server.host, server.port) as client:
                for _ in range(4):
                    await client.execute(DIMS, PERM, 8, payload=src)
                snap = await client.stats()
                assert snap["data_path"]["tensor_bytes_copied"] == 0
                # 4 requests x (ingress + egress) x the operand size.
                assert (
                    snap["data_path"]["tensor_bytes_zero_copy"]
                    >= 8 * src.nbytes
                )
                assert client.codec_stats.tensor_bytes_copied == 0
                drained = await client.drain(timeout_s=30.0)
            counters = drained["snapshot"]["counters"]
            assert counters["serving.arena.leases_at_drain"] == 0
            assert drained["snapshot"]["arena"]["active_blocks"] == 0
            assert drained["snapshot"]["arena"]["leaked"] == 0

        run_serving(scenario)

    def test_copying_baseline_fills_the_copied_bucket(self):
        rng = np.random.default_rng(13)
        src = rng.standard_normal(int(np.prod(DIMS)))

        async def scenario(server):
            async with ServingClient(
                server.host, server.port, zero_copy=False
            ) as client:
                await client.execute(DIMS, PERM, 8, payload=src)
                snap = await client.stats()
            assert snap["data_path"]["tensor_bytes_copied"] >= 2 * src.nbytes
            assert client.codec_stats.tensor_bytes_copied >= 2 * src.nbytes

        run_serving(scenario, zero_copy=False)

    @pytest.mark.parametrize("zero_copy", [True, False])
    def test_reply_too_large_is_typed(self, zero_copy):
        # The request (synth, tiny) fits the cap; the reply, carrying
        # the 960-element f64 output, cannot.
        async def scenario(server):
            async with ServingClient(
                server.host,
                server.port,
                zero_copy=server.zero_copy,
                max_frame_bytes=server.max_frame_bytes,
            ) as client:
                with pytest.raises(ReplyTooLargeError) as err:
                    await client.execute(
                        (8, 10, 12), (2, 0, 1), 8,
                        synth=True, return_output=True,
                    )
                assert err.value.code == "REPLY_TOO_LARGE"
                # The connection survives a shed reply: next request ok.
                info = await client.ping()
            assert info["draining"] is False
            assert server.admission.idle

        run_serving(scenario, zero_copy=zero_copy, max_frame_bytes=4096)

    def test_wire_request_tensors_land_in_arena_leases(self):
        rng = np.random.default_rng(14)
        src = rng.standard_normal(int(np.prod(DIMS)))

        async def scenario(server):
            before = server.arena.stats()["reuses"]
            async with ServingClient(server.host, server.port) as client:
                for _ in range(6):
                    await client.execute(DIMS, PERM, 8, payload=src)
            after = server.arena.stats()
            # Steady-state requests recycle blocks instead of growing
            # the arena: ingress + egress leases both come from it.
            assert after["reuses"] > before
            assert after["active_blocks"] == 0

        run_serving(scenario)
