"""Unit tests for the Orthogonal-Arbitrary kernel (Algs. 4 and 5)."""

import numpy as np
import pytest

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.taxonomy import Schema
from repro.errors import SchemaError
from repro.gpusim.engine import simulate_warp_accesses
from repro.gpusim.spec import KEPLER_K40C
from repro.kernels.orthogonal_arbitrary import OrthogonalArbitraryKernel

from tests.helpers import assert_kernel_correct


def make(dims, perm, ip, ba, op, bb, **kw):
    return OrthogonalArbitraryKernel(
        TensorLayout(dims), Permutation(perm), ip, ba, op, bb, **kw
    )


class TestCorrectness:
    @pytest.mark.parametrize(
        "dims,perm,ip,ba,op,bb",
        [
            ((8, 2, 8, 8), (2, 1, 3, 0), 3, 1, 3, 1),  # paper example
            ((6, 5, 7, 9), (1, 3, 0, 2), 2, 3, 2, 1),
            ((16, 16, 16), (1, 0, 2), 1, 2, 1, 2),
            ((8, 8, 8, 8), (1, 2, 0, 3), 2, 1, 2, 1),
            ((5, 3, 11, 2), (2, 1, 3, 0), 2, 1, 2, 1),
            ((12, 10, 9), (2, 0, 1), 1, 1, 2, 1),
        ],
    )
    def test_moves_data_correctly(self, dims, perm, ip, ba, op, bb, rng):
        assert_kernel_correct(make(dims, perm, ip, ba, op, bb), rng)

    def test_schema(self):
        k = make((8, 2, 8, 8), (2, 1, 3, 0), 3, 1, 3, 1)
        assert k.schema is Schema.ORTHOGONAL_ARBITRARY

    def test_paper_example_slice_sizes(self):
        """[a,b,c,d] => [c,b,d,a], 8,2,8,8: combining {a,b,c} and
        {c,b,d} gives fused sizes 128 each (Sec. III)."""
        k = make((8, 2, 8, 8), (2, 1, 3, 0), 3, 1, 3, 1)
        assert k.A == 128
        assert k.B == 8  # only-out dims: just d (c, b overlap the input)
        # The slice covers every dimension, so its output footprint is
        # one fully contiguous run.
        assert k.output_run_length() == 128 * 8
        assert k.launch_geometry.num_blocks == 1


class TestNormalization:
    def test_output_block_inside_input_group_dropped(self):
        """blockB on an input-covered dim adds nothing to the slice."""
        k = make((16, 256, 16, 16, 16), (3, 1, 4, 2, 0), 1, 2, 1, 2)
        assert k.b_dim is None
        assert k.blockB == 1

    def test_full_extent_blocks_fold_into_prefix(self):
        k = make((4, 8, 16), (2, 1, 0), 1, 8, 1, 1)
        assert k.in_prefix == 2
        assert k.blockA == 1

    def test_empty_input_group_rejected(self):
        with pytest.raises(SchemaError):
            make((8, 8), (1, 0), 0, 1, 1, 1)

    def test_oversized_smem_rejected(self):
        with pytest.raises(SchemaError):
            make((128, 128, 4), (1, 0, 2), 1, 1, 1, 1)


class TestOffsetArrays:
    def test_shapes(self):
        k = make((8, 2, 8, 8), (2, 1, 3, 0), 3, 1, 3, 1)
        in_off, out_off, sm_off = k.offset_arrays()
        assert len(in_off) == k.B
        assert len(out_off) == k.A * k.B
        assert len(sm_off) == k.A * k.B

    def test_sm_offsets_are_a_permutation_of_the_buffer(self):
        k = make((8, 2, 8, 8), (2, 1, 3, 0), 3, 1, 3, 1)
        _, _, sm_off = k.offset_arrays()
        assert sorted(sm_off.tolist()) == list(range(k.A * k.B))

    def test_out_offsets_unique(self):
        k = make((6, 5, 7, 9), (1, 3, 0, 2), 2, 1, 2, 1)
        _, out_off, _ = k.offset_arrays()
        assert len(np.unique(out_off)) == len(out_off)

    def test_out_offsets_contiguous_within_runs(self):
        """Consecutive write ids advance by one inside each output run —
        the coalescing property the indirection buys."""
        k = make((8, 2, 8, 8), (2, 1, 3, 0), 3, 1, 3, 1)
        _, out_off, _ = k.offset_arrays()
        lout = k.output_run_length()
        runs = out_off.reshape(-1, lout)
        assert np.all(np.diff(runs, axis=1) == 1)

    def test_input_offsets_first_is_zero(self):
        k = make((8, 2, 8, 8), (2, 1, 3, 0), 3, 1, 3, 1)
        in_off, _, _ = k.offset_arrays()
        assert in_off[0] == 0


class TestCounters:
    def test_detailed_engine_agreement(self):
        k = make((8, 2, 8, 8), (2, 1, 3, 0), 3, 1, 3, 1)
        ana = k.counters()
        det = simulate_warp_accesses(k.trace(), KEPLER_K40C, k.tex_array_bytes())
        assert ana.dram_ld_tx == det.dram_ld_tx
        assert ana.dram_st_tx == det.dram_st_tx
        assert ana.warp_ld_accesses == det.warp_ld_accesses
        assert ana.warp_st_accesses == det.warp_st_accesses
        assert ana.smem_conflict_cycles == det.smem_conflict_cycles

    def test_detailed_engine_agreement_blocked(self):
        """Misaligned blocked slices: the analytic model averages run
        starts over the address lattice, while the replay sees the actual
        (non-uniform, few-row) distribution — agree within ~15 %."""
        k = make((6, 5, 7, 9), (1, 3, 0, 2), 2, 3, 2, 1)
        ana = k.counters()
        det = simulate_warp_accesses(k.trace(), KEPLER_K40C, k.tex_array_bytes())
        assert ana.warp_ld_accesses == det.warp_ld_accesses
        assert abs(ana.dram_ld_tx - det.dram_ld_tx) <= 0.15 * det.dram_ld_tx
        assert abs(ana.dram_st_tx - det.dram_st_tx) <= 0.15 * det.dram_st_tx

    def test_table1_texture_traffic(self):
        """Table I last row: TM = C3 on input, 2 x C3' on output —
        i.e. one offset read per load access, two per store access."""
        k = make((8, 2, 8, 8), (2, 1, 3, 0), 3, 1, 3, 1)
        c = k.counters()
        assert c.tex_accesses == c.warp_ld_accesses + 2 * c.warp_st_accesses

    def test_smem_mirrors_global(self):
        c = make((8, 2, 8, 8), (2, 1, 3, 0), 3, 1, 3, 1).counters()
        assert c.smem_st_accesses == c.warp_ld_accesses
        assert c.smem_ld_accesses == c.warp_st_accesses

    def test_variant_counts_cover_grid(self):
        k = make((6, 5, 7, 9), (1, 3, 0, 2), 2, 3, 2, 1)
        total = sum(v.count for v in k.coverage.variants())
        assert total == k.coverage.num_blocks


class TestFeatures:
    def test_feature_names_match_table2(self):
        f = make((8, 2, 8, 8), (2, 1, 3, 0), 3, 1, 3, 1).features()
        for key in (
            "volume",
            "num_threads",
            "total_slice",
            "input_stride",
            "output_stride",
            "special_instr",
            "cycles",
        ):
            assert key in f

    def test_input_stride_is_contiguous_run(self):
        k = make((8, 2, 8, 8), (2, 1, 3, 0), 3, 1, 3, 1)
        assert k.features()["input_stride"] == 128.0

    def test_cycles_positive(self):
        assert make((8, 8, 8), (1, 2, 0), 1, 1, 2, 1).cycles() > 0

    def test_partial_slices_add_special_ops(self):
        even = make((8, 8, 8), (1, 2, 0), 1, 2, 2, 1).counters()
        ragged = make((8, 7, 9), (1, 2, 0), 1, 2, 2, 1).counters()
        assert ragged.special_ops > even.special_ops


class TestConflicts:
    def test_conflict_degree_sampled_from_real_offsets(self):
        k = make((8, 2, 8, 8), (2, 1, 3, 0), 3, 1, 3, 1)
        d = k.smem_read_conflict_degree()
        assert 1.0 <= d <= 32.0

    def test_conflicting_pattern_detected(self):
        """Output-order gather with a power-of-two input stride lands on
        few banks: the kernel must report a degree > 1 somewhere."""
        k = make((32, 32, 16), (1, 0, 2), 1, 1, 1, 1)
        assert k.smem_read_conflict_degree() > 1.0
