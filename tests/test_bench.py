"""Tests for the benchmark harness, suites, and rendering."""

import numpy as np
import pytest

from repro.baselines import CuttHeuristic, TTLG
from repro.bench.ascii_plot import multi_series
from repro.bench.harness import run_case, run_suite
from repro.bench.record import (
    SuiteResult,
    format_group_table,
    summarize_by_group,
)
from repro.bench.suites import (
    six_d_suite,
    ttc_benchmark_suite,
    varying_dims_suite,
)
from repro.core.fusion import scaled_rank
from repro.model.pretrained import oracle_predictor


@pytest.fixture(scope="module")
def libs():
    return [TTLG(predictor=oracle_predictor()), CuttHeuristic()]


class TestSuites:
    def test_six_d_has_720_cases(self):
        cases = six_d_suite(16)
        assert len(cases) == 720
        assert len({c.perm for c in cases}) == 720

    def test_six_d_sorted_by_scaled_rank(self):
        ranks = [c.scaled_rank for c in six_d_suite(16)]
        assert ranks == sorted(ranks)
        assert ranks[0] == 1 and ranks[-1] == 6

    def test_six_d_scaled_ranks_consistent(self):
        for c in six_d_suite(15)[::97]:
            assert c.scaled_rank == scaled_rank(c.dims, c.perm)

    def test_varying_dims_extents(self):
        cases = varying_dims_suite()
        assert [c.dims[0] for c in cases] == [15, 16, 31, 32, 63, 64, 127, 128]
        assert all(c.perm == (0, 2, 1, 3) for c in cases)

    def test_ttc_suite_has_57_unfusable_cases(self):
        cases = ttc_benchmark_suite()
        assert len(cases) == 57
        for c in cases:
            assert scaled_rank(c.dims, c.perm) == len(c.dims)

    def test_ttc_suite_volumes_near_200mb(self):
        for c in ttc_benchmark_suite():
            assert 50 * 1024**2 < c.volume * 8 < 800 * 1024**2

    def test_ttc_suite_covers_ranks_2_to_6(self):
        ranks = {len(c.dims) for c in ttc_benchmark_suite()}
        assert ranks == {2, 3, 4, 5, 6}


class TestHarness:
    def test_run_case_repeated(self, libs):
        case = six_d_suite(16)[400]
        res = run_case(case, libs, scenario="repeated")
        assert set(res.bandwidth) == {"TTLG", "cuTT Heuristic"}
        assert all(v > 0 for v in res.bandwidth.values())

    def test_single_use_slower(self, libs):
        case = six_d_suite(16)[400]
        rep = run_case(case, libs, "repeated")
        single = run_case(case, libs, "single")
        for name in rep.bandwidth:
            assert single.bandwidth[name] < rep.bandwidth[name]

    def test_repeats_amortize(self, libs):
        case = six_d_suite(16)[400]
        one = run_case(case, libs, "single", repeats=1)
        many = run_case(case, libs, "single", repeats=128)
        for name in one.bandwidth:
            assert many.bandwidth[name] > one.bandwidth[name]

    def test_unknown_scenario(self, libs):
        with pytest.raises(ValueError):
            run_case(six_d_suite(16)[0], libs, "bogus")

    def test_run_suite_limit_subsamples(self, libs):
        results = run_suite(six_d_suite(16), libs, limit=10)
        assert len(results) == 10

    def test_winner(self, libs):
        res = run_case(six_d_suite(16)[700], libs)
        assert res.winner() in res.bandwidth


class TestRecord:
    @pytest.fixture(scope="class")
    def suite_result(self, libs):
        results = run_suite(six_d_suite(16), libs, limit=12)
        return SuiteResult(title="test suite", results=results)

    def test_series_alignment(self, suite_result):
        s = suite_result.series("TTLG")
        assert len(s) == 12
        assert np.all(np.isfinite(s))

    def test_format_table(self, suite_result):
        text = suite_result.format_table()
        assert "TTLG" in text and "rank" in text

    def test_format_summary_includes_wins(self, suite_result):
        assert "wins" in suite_result.format_summary()

    def test_group_summary_by_rank(self, suite_result):
        groups = summarize_by_group(suite_result)
        assert all(1 <= g <= 6 for g in groups)
        text = format_group_table("by rank", groups)
        assert "by rank" in text


class TestAsciiPlot:
    def test_renders_series(self):
        text = multi_series({"a": [1, 2, 3], "b": [3, 2, 1]})
        assert "a" in text and "b" in text
        assert "*" in text and "o" in text

    def test_empty(self):
        assert multi_series({"a": []}) == "(no data)"

    def test_handles_nan(self):
        text = multi_series({"a": [1.0, float("nan"), 3.0]})
        assert "a" in text
