"""Batched execution: run_batch parity, leading-axis partitioning.

Every program kind's :meth:`run_batch` over B stacked operands must be
bit-identical to B independent :meth:`run` calls — across schemas,
dtypes, forced program kinds (indexed gather/scatter, chunked), the
``out=`` in-place form, and both input shapes (a sequence of flat
operands and a pre-stacked ``(B, volume)`` block).  The ViewProgram
leading-axis partition fix is covered here too: ``parts`` requests no
longer collapse to one task when the first output extent is small.
"""

import numpy as np
import pytest

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.errors import SchemaError
from repro.kernels.common import reference_transpose
from repro.kernels.executor import (
    ChunkedProgram,
    IndexedProgram,
    RegionProgram,
    ViewProgram,
    clear_exec_caches,
    compile_executor,
    executor_for,
)
from tests.test_executor import KERNEL_FACTORIES


@pytest.fixture(autouse=True)
def _fresh_exec_cache():
    clear_exec_caches()
    yield
    clear_exec_caches()


def _batch(k, rng, b=4, dtype=np.float64):
    return [rng.standard_normal(k.volume).astype(dtype) for _ in range(b)]


def _refs(k, srcs):
    return [reference_transpose(s, k.layout, k.perm) for s in srcs]


# ----------------------------------------------------------------------
# Parity grid: run_batch == B independent runs
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(KERNEL_FACTORIES))
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_run_batch_matches_independent_runs(name, dtype, rng):
    k = KERNEL_FACTORIES[name]()
    program = executor_for(k)
    srcs = _batch(k, rng, dtype=dtype)
    moved = program.run_batch(srcs)
    assert moved.shape == (len(srcs), k.volume)
    for row, src in zip(moved, srcs):
        np.testing.assert_array_equal(row, program.run(src))


@pytest.mark.parametrize("name", sorted(KERNEL_FACTORIES))
def test_run_batch_out_in_place(name, rng):
    k = KERNEL_FACTORIES[name]()
    program = executor_for(k)
    srcs = _batch(k, rng, b=3)
    out = np.empty((3, k.volume), dtype=np.float64)
    res = program.run_batch(srcs, out=out)
    assert res is out
    for row, ref in zip(out, _refs(k, srcs)):
        np.testing.assert_array_equal(row, ref)


@pytest.mark.parametrize("name", sorted(KERNEL_FACTORIES))
def test_run_batch_accepts_prestacked_block(name, rng):
    k = KERNEL_FACTORIES[name]()
    program = executor_for(k)
    srcs = _batch(k, rng, b=3)
    stacked = np.stack(srcs)
    moved = program.run_batch(stacked)
    for row, ref in zip(moved, _refs(k, srcs)):
        np.testing.assert_array_equal(row, ref)


@pytest.mark.parametrize("name", sorted(KERNEL_FACTORIES))
def test_run_batch_single_and_empty(name, rng):
    k = KERNEL_FACTORIES[name]()
    program = executor_for(k)
    src = rng.standard_normal(k.volume)
    np.testing.assert_array_equal(
        program.run_batch([src])[0], program.run(src)
    )
    empty = program.run_batch([])
    assert empty.shape == (0, k.volume)


@pytest.mark.parametrize("name", ["od-partial", "oa-partial", "od-exact"])
def test_forced_indexed_and_chunked_batch_parity(name, rng):
    k = KERNEL_FACTORIES[name]()
    srcs = _batch(k, rng)
    refs = _refs(k, srcs)
    indexed = compile_executor(k, lowering=False)
    assert isinstance(indexed, IndexedProgram)
    for row, ref in zip(indexed.run_batch(srcs), refs):
        np.testing.assert_array_equal(row, ref)
    chunked = compile_executor(k, lowering=False, max_index_bytes=1024)
    assert isinstance(chunked, ChunkedProgram)
    for row, ref in zip(chunked.run_batch(srcs), refs):
        np.testing.assert_array_equal(row, ref)
    out = np.empty((len(srcs), k.volume))
    chunked.run_batch(srcs, out=out)
    for row, ref in zip(out, refs):
        np.testing.assert_array_equal(row, ref)


@pytest.mark.parametrize("orientation", ["gather", "scatter"])
def test_indexed_orientations_batch_parity(orientation, rng):
    k = KERNEL_FACTORIES["od-partial"]()
    base = compile_executor(k, lowering=False)
    fwd = np.array(base.index_map)
    prog = IndexedProgram(fwd, orientation=orientation)
    srcs = _batch(k, rng)
    refs = _refs(k, srcs)
    for row, ref in zip(prog.run_batch(srcs), refs):
        np.testing.assert_array_equal(row, ref)
    out = np.empty((len(srcs), k.volume))
    prog.run_batch(srcs, out=out)
    for row, ref in zip(out, refs):
        np.testing.assert_array_equal(row, ref)


def test_region_batch_parity(rng):
    k = KERNEL_FACTORIES["od-partial"]()
    program = compile_executor(k)
    assert isinstance(program, RegionProgram)
    srcs = _batch(k, rng)
    for row, ref in zip(program.run_batch(srcs), _refs(k, srcs)):
        np.testing.assert_array_equal(row, ref)


# ----------------------------------------------------------------------
# batch_view validation
# ----------------------------------------------------------------------


def test_batch_view_rejects_heterogeneous_operands(rng):
    k = KERNEL_FACTORIES["naive"]()
    program = executor_for(k)
    good = rng.standard_normal(k.volume)
    with pytest.raises(SchemaError):
        program.batch_view([good, rng.standard_normal(k.volume - 1)])
    with pytest.raises(SchemaError):
        program.batch_view([good, good.astype(np.float32)])
    with pytest.raises(SchemaError):
        program.batch_view(np.zeros((2, k.volume - 1)))


# ----------------------------------------------------------------------
# ViewProgram leading-axis partition (degenerate-split fix)
# ----------------------------------------------------------------------


def test_view_partition_splits_flattened_leading_block():
    """A small first output extent no longer caps the split: the
    partition flattens enough leading axes to honor ``parts``."""
    from repro.kernels.naive import NaiveKernel

    k = NaiveKernel(TensorLayout((7, 2, 2, 9)), Permutation((1, 2, 0, 3)))
    program = executor_for(k)
    assert isinstance(program, ViewProgram)
    # out_shape leads with extent 2; the old first-axis split gave <= 2
    # tasks no matter what the pool asked for.
    tasks = program.partition(8)
    assert len(tasks) == 8


@pytest.mark.parametrize("parts", [1, 2, 3, 5, 8, 64])
def test_view_partition_parity_any_parts(parts, rng):
    from repro.kernels.naive import NaiveKernel

    k = NaiveKernel(TensorLayout((7, 2, 2, 9)), Permutation((1, 2, 0, 3)))
    program = executor_for(k)
    src = rng.standard_normal(k.volume)
    ref = reference_transpose(src, k.layout, k.perm)
    out = np.empty(k.volume)
    tasks = program.partition(parts)
    assert tasks
    for task in tasks:
        program.run_part(src, out, task)
    np.testing.assert_array_equal(out, ref)


@pytest.mark.parametrize("name", sorted(KERNEL_FACTORIES))
@pytest.mark.parametrize("parts", [2, 5])
def test_partition_parity_all_kinds(name, parts, rng):
    k = KERNEL_FACTORIES[name]()
    program = executor_for(k)
    src = rng.standard_normal(k.volume)
    ref = reference_transpose(src, k.layout, k.perm)
    out = np.empty(k.volume)
    for task in program.partition(parts):
        program.run_part(src, out, task)
    np.testing.assert_array_equal(out, ref)


# ----------------------------------------------------------------------
# Scheduler submit_batch + service-level batched execution
# ----------------------------------------------------------------------


def test_scheduler_submit_batch_stack_parity(rng):
    from repro.runtime import TransposeService

    dims, perm = (20, 6, 18), (2, 1, 0)
    srcs = [rng.standard_normal(int(np.prod(dims))) for _ in range(5)]
    refs = [
        reference_transpose(s, TensorLayout(dims), Permutation(perm))
        for s in srcs
    ]
    with TransposeService(num_streams=3) as service:
        plan = service.plan(dims, perm)
        report = service.scheduler.submit_batch(plan, srcs).result(timeout=30)
        assert report.batch == 5
        assert report.output.shape == (5, plan.layout.volume)
        for row, ref in zip(report.output, refs):
            np.testing.assert_array_equal(row, ref)


def test_scheduler_submit_batch_rejects_empty():
    from repro.runtime import TransposeService

    with TransposeService(num_streams=1) as service:
        plan = service.plan((4, 4), (1, 0))
        with pytest.raises(ValueError):
            service.scheduler.submit_batch(plan, [])


def test_service_submit_batched_coalesces_and_resolves(rng):
    from repro.runtime import TransposeService

    dims, perm = (6, 5, 7), (2, 0, 1)
    srcs = [rng.standard_normal(int(np.prod(dims))) for _ in range(4)]
    refs = [
        reference_transpose(s, TensorLayout(dims), Permutation(perm))
        for s in srcs
    ]
    # batch_max == B and a wide window: the 4th submission flushes the
    # bucket deterministically, no timing dependence.
    with TransposeService(
        num_streams=2, batch_window_s=30.0, batch_max=4
    ) as service:
        futs = [
            service.submit_batched(dims, perm, payload=s) for s in srcs
        ]
        reports = [f.result(timeout=30) for f in futs]
        for report, ref in zip(reports, refs):
            assert report.batch == 4
            np.testing.assert_array_equal(report.output, ref)
        stats = service.stats()
    counters = stats["metrics"]["counters"]
    assert counters["batch_requests"] == 4
    assert counters["batch_flushes"] == 1
    assert counters["batch_coalesced"] == 3
    key = "batch_coalesced.6x5x7|2,0,1"
    assert counters[key] == 3
    assert stats["batching"]["flushes"] == 1
