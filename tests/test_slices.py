"""Unit tests for Alg. 3 (slice-size choice) in repro.core.slices."""

import pytest

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.slices import (
    choose_best,
    derive_group,
    distinct_groups,
    enumerate_orthogonal_arbitrary,
    enumerate_orthogonal_distinct,
    max_slice_volume,
)
from repro.errors import PlanError
from repro.gpusim.spec import KEPLER_K40C
from repro.model.pretrained import oracle_predictor


class TestDeriveGroup:
    def test_single_dim_with_block(self):
        """Paper line 10: blockA = ceil(limit / prefix volume)."""
        g = derive_group((27, 27, 27), 32)
        assert (g.prefix, g.block, g.size) == (1, 2, 54)

    def test_prefix_already_large(self):
        g = derive_group((64, 5), 32)
        assert (g.prefix, g.block) == (0, 32)
        assert g.size == 32

    def test_combines_small_dims(self):
        g = derive_group((4, 4, 4), 32)
        assert (g.prefix, g.block, g.size) == (2, 2, 32)

    def test_whole_tensor_too_small(self):
        assert derive_group((2, 2), 32) is None

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            derive_group((4, 4), 0)


class TestDistinctGroups:
    def test_dedupes(self):
        groups = distinct_groups((27, 27, 27), 32, 27**3)
        keys = [(g.prefix, g.block) for g in groups]
        assert len(keys) == len(set(keys))

    def test_includes_subwarp_prefixes(self):
        """The 27^5 story: the pure prefix of size 27 < 32 must appear."""
        groups = distinct_groups((27, 27, 27), 32, 27**3)
        assert any(g.size == 27 for g in groups)

    def test_sizes_within_cap(self):
        cap = 500
        for g in distinct_groups((27, 27, 27), 32, cap):
            assert g.size <= max(cap, 32 * 2)  # derive may overshoot a bit


class TestMaxSliceVolume:
    def test_overbooking_shrinks_cap(self):
        layout = TensorLayout((64,) * 4)
        lo = max_slice_volume(layout, KEPLER_K40C, 8448, overbooking=8)
        hi = max_slice_volume(layout, KEPLER_K40C, 8448, overbooking=1)
        assert lo < hi

    def test_minimum_floor(self):
        layout = TensorLayout((8, 8))
        cap = max_slice_volume(layout, KEPLER_K40C, 8448)
        assert cap >= 32 * 32


class TestEnumerateOrthogonalDistinct:
    def test_paper_27_5_variant_count(self):
        """The Fig. 5 example enumerates a few dozen slice variants."""
        layout = TensorLayout((27,) * 5)
        perm = Permutation((4, 1, 2, 0, 3))
        ks = enumerate_orthogonal_distinct(layout, perm, KEPLER_K40C)
        assert 10 <= len(ks) <= 120

    def test_contains_paper_best_choice(self):
        """Input slice 189 (= 27 x 7), output slice 27 must be among
        the candidates (the paper's model-chosen best)."""
        layout = TensorLayout((27,) * 5)
        perm = Permutation((4, 1, 2, 0, 3))
        ks = enumerate_orthogonal_distinct(layout, perm, KEPLER_K40C)
        assert any(k.A == 189 and k.B == 27 for k in ks)

    def test_all_disjoint(self):
        layout = TensorLayout((16,) * 4)
        perm = Permutation((3, 2, 1, 0))
        for k in enumerate_orthogonal_distinct(layout, perm, KEPLER_K40C):
            in_dims = set(range(k.in_prefix))
            if k.a_dim is not None:
                in_dims.add(k.a_dim)
            out_dims = set(k.out_full)
            if k.b_dim is not None:
                out_dims.add(k.b_dim)
            assert not in_dims & out_dims

    def test_respects_max_configs(self):
        layout = TensorLayout((16,) * 6)
        perm = Permutation((5, 4, 3, 2, 1, 0))
        ks = enumerate_orthogonal_distinct(
            layout, perm, KEPLER_K40C, max_configs=7
        )
        assert len(ks) <= 7


class TestEnumerateOrthogonalArbitrary:
    def test_all_fit_shared_memory(self):
        layout = TensorLayout((16,) * 6)
        perm = Permutation((4, 1, 2, 5, 3, 0))
        for k in enumerate_orthogonal_arbitrary(layout, perm, KEPLER_K40C):
            assert k.A * k.B * 8 <= KEPLER_K40C.shared_mem_per_sm

    def test_fewer_configs_than_od(self):
        """Sec. V: the OA search space is much smaller (smem bound)."""
        layout = TensorLayout((16,) * 6)
        perm = Permutation((5, 4, 3, 2, 1, 0))
        oa = enumerate_orthogonal_arbitrary(layout, perm, KEPLER_K40C)
        od = enumerate_orthogonal_distinct(layout, perm, KEPLER_K40C)
        assert len(oa) < len(od)

    def test_no_duplicates(self):
        layout = TensorLayout((16,) * 5)
        perm = Permutation((3, 1, 4, 2, 0))
        ks = enumerate_orthogonal_arbitrary(layout, perm, KEPLER_K40C)
        keys = {(k.in_prefix, k.blockA, k.out_prefix, k.blockB) for k in ks}
        assert len(keys) == len(ks)


class TestChooseBest:
    def test_picks_minimum(self):
        layout = TensorLayout((27,) * 5)
        perm = Permutation((4, 1, 2, 0, 3))
        ks = enumerate_orthogonal_distinct(layout, perm, KEPLER_K40C)
        pred = oracle_predictor()
        res = choose_best(ks, pred)
        assert res.predicted_time == min(pred(k) for k in ks)
        assert res.num_candidates == len(ks)

    def test_empty_raises(self):
        with pytest.raises(PlanError):
            choose_best([], lambda k: 0.0)
