"""Fig. 12 reproduction: bandwidth vs number of repeated calls.

The paper amortizes the one-time plan cost over 1..4096 calls of the
same transposition (6D tensor, all extents 16) for two permutations:

- ``0 2 5 1 4 3`` (matching FVI, Fig. 12a): TTLG always at/above
  cuTT-measure;
- ``4 1 2 5 3 0`` (non-matching FVI, Fig. 12b): cuTT-measure eventually
  catches up (slightly better kernel, much costlier plan) after hundreds
  of calls.
"""

import numpy as np

from conftest import write_result

from repro.bench.ascii_plot import multi_series

DIMS = (16,) * 6
REPEATS = [2**k for k in range(13)]  # 1 .. 4096


def run_series(libraries, perm):
    plans = {lib.name: lib.plan(DIMS, perm) for lib in libraries}
    series = {
        name: [
            plan.bandwidth_gbps(repeats=r, include_plan=True)
            for r in REPEATS
        ]
        for name, plan in plans.items()
        if name != "TTC"  # offline code generator, as in the paper
    }
    return series


def render(title, series):
    lines = [title, f"{'#calls':>8s} " + " ".join(
        f"{n:>15s}" for n in series
    )]
    for i, r in enumerate(REPEATS):
        cells = " ".join(f"{series[n][i]:>15.1f}" for n in series)
        lines.append(f"{r:>8d} {cells}")
    lines.append("")
    lines.append(
        multi_series(series, y_label="GB/s", x_label="log2(#calls)")
    )
    return "\n".join(lines)


def test_fig12a_matching_fvi(benchmark, libraries):
    perm = (0, 2, 5, 1, 4, 3)
    series = run_series(libraries, perm)
    text = render("Fig. 12a — permutation 0 2 5 1 4 3 (matching FVI)", series)
    print(text)
    write_result("fig12a_repeated_calls", text)

    ttlg = np.array(series["TTLG"])
    cutt_m = np.array(series["cuTT Measure"])
    # Paper: "TTLG always performs better than cuTT-measure".
    assert np.all(ttlg >= cutt_m * 0.99)

    lib = libraries[0]
    benchmark(lambda: lib.plan(DIMS, perm).bandwidth_gbps(4096, True))


def test_fig12b_non_matching_fvi(benchmark, libraries):
    perm = (4, 1, 2, 5, 3, 0)
    series = run_series(libraries, perm)
    text = render(
        "Fig. 12b — permutation 4 1 2 5 3 0 (non-matching FVI)", series
    )
    print(text)
    write_result("fig12b_repeated_calls", text)

    ttlg = np.array(series["TTLG"])
    cutt_m = np.array(series["cuTT Measure"])
    # Paper: TTLG far ahead at few calls; cuTT-measure closes most of
    # the gap after thousands of calls (in the paper it passes TTLG
    # slightly after ~500 calls; our structurally weaker cuTT kernel
    # menu approaches without overtaking — see EXPERIMENTS.md).
    assert ttlg[0] > 2 * cutt_m[0]
    assert cutt_m[-1] > 0.7 * ttlg[-1]
    assert (ttlg[0] / cutt_m[0]) > 2 * (ttlg[-1] / cutt_m[-1])

    lib = libraries[2]
    benchmark(lambda: lib.plan(DIMS, perm).bandwidth_gbps(4096, True))
