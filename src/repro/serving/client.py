"""Pooled asyncio client for the serving protocol.

:class:`ServingClient` owns a small pool of TCP connections to one
server, **pipelines** requests over them (many outstanding requests per
connection, matched to replies by ``id``), and converts typed error
replies back into the same :mod:`repro.errors` exceptions the server
raised.

Load shedding is handled transparently: ``OVERLOADED`` and
``QUOTA_EXCEEDED`` replies back the client off with decorrelated-jitter
exponential delays and retry up to ``max_retries`` times before the
typed exception finally propagates — so a well-behaved caller sees an
overloaded server as *slower*, not as failing, and offered load decays
to what the server admits.  ``DRAINING`` is never retried (the server
is going away); neither are request errors (``BAD_REQUEST``,
``INVALID_*`` …), which would fail identically on retry.

The CLI (``python -m repro stats --connect``) and the load benchmark
both drive this client; tests use it against in-process servers.
"""

from __future__ import annotations

import asyncio
import itertools
import random
from typing import Optional, Sequence

import numpy as np

from repro.errors import (
    DeadlineExceededError,
    DrainingError,
    InvalidLayoutError,
    InvalidPermutationError,
    OverloadedError,
    PlanError,
    ProtocolError,
    QuotaExceededError,
    ReproError,
    ServingError,
)
from repro.serving.codec import (
    DEFAULT_MAX_FRAME_BYTES,
    CodecStats,
    decode,
    pack_frame,
    pack_frame_parts,
    read_frame,
)
from repro.serving.server import ReplyTooLargeError
from repro.serving.wire import FrameConnection

#: wire error code -> exception type raised client-side.
ERROR_TYPES = {
    "FRAME_TOO_LARGE": ProtocolError,
    "REPLY_TOO_LARGE": ReplyTooLargeError,
    "BAD_REQUEST": ProtocolError,
    "UNKNOWN_VERB": ProtocolError,
    "OVERLOADED": OverloadedError,
    "QUOTA_EXCEEDED": QuotaExceededError,
    "DEADLINE_EXCEEDED": DeadlineExceededError,
    "DRAINING": DrainingError,
    "INVALID_PERMUTATION": InvalidPermutationError,
    "INVALID_LAYOUT": InvalidLayoutError,
    "PLAN_ERROR": PlanError,
    "INTERNAL": ReproError,
}

#: Error codes worth retrying: the server shed us, not our request.
RETRYABLE = frozenset({"OVERLOADED", "QUOTA_EXCEEDED"})


def exception_for(code: str, message: str) -> ReproError:
    """The client-side exception for a typed error reply."""
    exc_type = ERROR_TYPES.get(code, ServingError)
    exc = exc_type(message or code)
    exc.code = code  # wire code survives on the instance
    return exc


def _fresh_buffer(shape, dtype) -> np.ndarray:
    """The client-side decode ``buffer_factory``: reply tensors land in
    one fresh array (the storage the caller receives) instead of a
    frame-buffer view plus an owned copy."""
    return np.empty(shape, dtype=dtype)


class _Connection:
    """One pipelined connection: a writer plus a reply-pump task.

    Zero-copy connections run on the readinto wire transport
    (:class:`~repro.serving.wire.FrameConnection`): reply frames are
    recv'd straight into the buffer decode reads and reply tensors land
    in fresh arrays via ``buffer_factory``; requests go out as
    scatter-gather memoryview parts over the caller's arrays.  Copying
    connections keep the original StreamReader/``pack_frame`` path.
    """

    def __init__(
        self,
        max_frame_bytes: int,
        *,
        reader=None,
        writer=None,
        wire: Optional[FrameConnection] = None,
        zero_copy: bool = True,
        stats: Optional[CodecStats] = None,
    ):
        self.reader = reader
        self.writer = wire if wire is not None else writer
        self.wire = wire
        self.max_frame_bytes = max_frame_bytes
        self.zero_copy = zero_copy
        self.stats = stats
        self.pending: dict = {}
        self.lock = asyncio.Lock()
        self.pump = asyncio.ensure_future(self._pump())

    async def _pump(self) -> None:
        try:
            while True:
                if self.wire is not None:
                    reply = await self.wire.read_frame()
                else:
                    reply = await read_frame(
                        self.reader,
                        self.max_frame_bytes,
                        stats=self.stats,
                    )
                fut = self.pending.pop(reply.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(reply)
        except (EOFError, ProtocolError, ConnectionError, OSError) as exc:
            self._fail_all(exc)
        except asyncio.CancelledError:
            self._fail_all(ConnectionResetError("client closed"))
            raise

    def _fail_all(self, exc) -> None:
        err = ConnectionResetError(f"connection lost: {exc}")
        for fut in self.pending.values():
            if not fut.done():
                fut.set_exception(err)
        self.pending.clear()

    async def request(self, msg: dict) -> dict:
        fut: "asyncio.Future" = asyncio.get_running_loop().create_future()
        self.pending[msg["id"]] = fut
        if self.zero_copy:
            # Scatter-gather send: payload tensors go out as memoryview
            # parts over the caller's arrays.  The transport consumes
            # every part before write_parts returns, so the arrays only
            # need to stay unmutated until drain() below.
            parts = pack_frame_parts(
                msg, max_frame_bytes=self.max_frame_bytes, stats=self.stats
            )
            async with self.lock:
                self.wire.write_parts(parts)
                await self.wire.drain()
        else:
            frame = pack_frame(
                msg, max_frame_bytes=self.max_frame_bytes, stats=self.stats
            )
            async with self.lock:
                self.writer.write(frame)
                await self.writer.drain()
        return await fut

    async def close(self) -> None:
        self.pump.cancel()
        try:
            await self.pump
        except (asyncio.CancelledError, Exception):
            pass
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class ServingClient:
    """Connection-pooled, retrying client for one serving endpoint.

    Parameters
    ----------
    host / port:
        The server address.
    pool_size:
        Connections to open; requests round-robin over them.
    max_retries:
        Retries after retryable shed replies before the exception
        propagates.  0 disables retrying.
    backoff_base_s / backoff_max_s:
        Decorrelated-jitter exponential backoff bounds between retries.
    zero_copy:
        Send payload tensors as scatter-gather memoryview parts and
        land reply tensors in fresh storage directly (default); False
        selects the copying codec baseline.  Either way the wire bytes
        are identical.
    rng:
        Jitter source (tests pass a seeded :class:`random.Random`).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        pool_size: int = 2,
        max_retries: int = 6,
        backoff_base_s: float = 0.005,
        backoff_max_s: float = 0.25,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        zero_copy: bool = True,
        rng: Optional[random.Random] = None,
    ):
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.max_frame_bytes = max_frame_bytes
        self.zero_copy = bool(zero_copy)
        #: Tensor-byte accounting across the pool (asyncio-single-
        #: threaded, so one shared instance is race-free).
        self.codec_stats = CodecStats()
        self._rng = rng if rng is not None else random.Random()
        self._ids = itertools.count(1)
        self._conns: list = []
        self._next_conn = 0
        self._closed = False
        #: Totals the load benchmark reads back.
        self.retries = 0
        self.sheds_seen = 0

    # ------------------------------------------------------------------
    async def connect(self) -> "ServingClient":
        loop = asyncio.get_running_loop()

        def _decode_reply(body: bytearray):
            return decode(
                body, buffer_factory=_fresh_buffer, stats=self.codec_stats
            )

        for _ in range(self.pool_size):
            if self.zero_copy:
                _, wire = await loop.create_connection(
                    lambda: FrameConnection(
                        max_frame_bytes=self.max_frame_bytes,
                        decoder=_decode_reply,
                    ),
                    self.host,
                    self.port,
                )
                conn = _Connection(
                    self.max_frame_bytes,
                    wire=wire,
                    zero_copy=True,
                    stats=self.codec_stats,
                )
            else:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port
                )
                conn = _Connection(
                    self.max_frame_bytes,
                    reader=reader,
                    writer=writer,
                    zero_copy=False,
                    stats=self.codec_stats,
                )
            self._conns.append(conn)
        return self

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            await conn.close()
        self._conns.clear()

    async def __aenter__(self) -> "ServingClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def request(self, op: str, **fields) -> dict:
        """One raw request -> the decoded ``result`` dict.

        Retries retryable shed replies with backoff; raises the typed
        exception otherwise.
        """
        if not self._conns:
            raise RuntimeError("client is not connected")
        msg = {"op": op, "id": next(self._ids), **fields}
        delay = self.backoff_base_s
        for attempt in range(self.max_retries + 1):
            conn = self._conns[self._next_conn % len(self._conns)]
            self._next_conn += 1
            reply = await conn.request(msg)
            if reply.get("ok"):
                return reply.get("result")
            code = reply.get("error", "INTERNAL")
            if code in RETRYABLE:
                self.sheds_seen += 1
                if attempt < self.max_retries:
                    self.retries += 1
                    # Decorrelated jitter: sleep U(base, delay*3), capped.
                    delay = min(
                        self.backoff_max_s,
                        self._rng.uniform(self.backoff_base_s, delay * 3),
                    )
                    await asyncio.sleep(delay)
                    msg = {**msg, "id": next(self._ids)}
                    continue
            raise exception_for(code, reply.get("message", ""))
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    async def ping(self) -> dict:
        return await self.request("ping")

    async def execute(
        self,
        dims: Sequence[int],
        perm: Sequence[int],
        elem_bytes: int = 8,
        payload: Optional[np.ndarray] = None,
        *,
        tenant: str = "default",
        deadline_ms: Optional[float] = None,
        synth: bool = False,
        return_output: Optional[bool] = None,
    ) -> dict:
        """Execute one transposition; the result dict mirrors the
        server-side :class:`~repro.runtime.scheduler.ExecutionReport`
        (plus ``replica``), with ``output`` when one was requested."""
        fields = {
            "dims": list(int(d) for d in dims),
            "perm": list(int(p) for p in perm),
            "elem_bytes": int(elem_bytes),
            "tenant": tenant,
        }
        if payload is not None:
            fields["payload"] = np.asarray(payload)
        if synth:
            fields["synth"] = True
        if deadline_ms is not None:
            fields["deadline_ms"] = float(deadline_ms)
        if return_output is not None:
            fields["return_output"] = bool(return_output)
        return await self.request("execute", **fields)

    async def execute_batched(
        self,
        dims: Sequence[int],
        perm: Sequence[int],
        elem_bytes: int = 8,
        payload: Optional[np.ndarray] = None,
        *,
        tenant: str = "default",
        synth: bool = False,
        return_output: Optional[bool] = None,
    ) -> dict:
        """Route through the replica's micro-batching window."""
        fields = {
            "dims": list(int(d) for d in dims),
            "perm": list(int(p) for p in perm),
            "elem_bytes": int(elem_bytes),
            "tenant": tenant,
        }
        if payload is not None:
            fields["payload"] = np.asarray(payload)
        if synth:
            fields["synth"] = True
        if return_output is not None:
            fields["return_output"] = bool(return_output)
        return await self.request("batched", **fields)

    async def stats(self) -> dict:
        return await self.request("stats")

    async def drain(self, timeout_s: Optional[float] = None) -> dict:
        return await self.request("drain", timeout_s=timeout_s)
