"""Figs. 10 and 11 reproduction: 720 permutations of a 6D tensor, extents
all 17 — repeated use (Fig. 10) and single use (Fig. 11).

Extent 17 is the other misaligned case: 17-element runs overshoot the
warp and transaction granularities, which is where TTLG's
dimension combining pays off against single-dim tilers.
"""

import numpy as np

from conftest import render_sweep, write_result

EXTENT = 17


def _series(sweep, scenario, name):
    return np.array([r[name] for r in sweep.bandwidths(scenario)])


def test_fig10_repeated_use(benchmark, sweep_factory, libraries):
    sweep = sweep_factory(EXTENT)
    text = render_sweep(
        sweep, "repeated", "Fig. 10 — 6D tensor (all 17), repeated use"
    )
    print(text)
    write_result("fig10_6d_all17_repeated", text)

    ttlg = _series(sweep, "repeated", "TTLG")
    cutt_m = _series(sweep, "repeated", "cuTT Measure")
    cutt_h = _series(sweep, "repeated", "cuTT Heuristic")
    ttc = _series(sweep, "repeated", "TTC")
    assert np.mean(ttlg >= cutt_m * 0.99) > 0.7
    assert np.mean(cutt_m >= cutt_h * 0.99) > 0.95
    # TTC sits at the bottom of the library pack on average (its naive
    # fallback wins the odd case where elementwise streaming is fine).
    assert ttc.mean() <= cutt_m.mean() * 1.02
    assert ttc.mean() < 0.9 * ttlg.mean()
    # The misalignment penalty: mean below the extent-16 sweep's (checked
    # cross-figure in EXPERIMENTS.md); locally, TTLG still leads.
    assert ttlg.mean() > 1.1 * cutt_h.mean()

    case = sweep.cases[min(300, len(sweep.cases) - 1)]
    benchmark(lambda: libraries[0].plan(case.dims, case.perm))


def test_fig11_single_use(benchmark, sweep_factory, libraries):
    sweep = sweep_factory(EXTENT)
    text = render_sweep(
        sweep, "single", "Fig. 11 — 6D tensor (all 17), single use"
    )
    print(text)
    write_result("fig11_6d_all17_single", text)

    ttlg = _series(sweep, "single", "TTLG")
    cutt_m = _series(sweep, "single", "cuTT Measure")
    assert np.mean(cutt_m < ttlg) > 0.95

    case = sweep.cases[min(300, len(sweep.cases) - 1)]
    benchmark(lambda: libraries[1].plan(case.dims, case.perm))
