"""Slice-size and blocking-factor search (Alg. 3).

For the Orthogonal-Distinct and Orthogonal-Arbitrary kernels the combined
input-group volume ``A`` and output-group volume ``B`` are free
parameters.  Alg. 3 enumerates targets ``limit_a``/``limit_b`` in warp
multiples, derives the minimal prefix+block that reaches each target, and
keeps the configuration with the best *predicted* time.

The enumeration deduplicates derived ``(in_prefix, blockA, out_prefix,
blockB)`` tuples — many warp-multiple targets collapse to the same
configuration (for the paper's 27^5 example this yields the ~31 slice
variants of Fig. 5).

The upper bound on slice volume keeps the grid "overbooked": at least
``overbooking_factor`` times the number of thread blocks that can be
resident on the whole device, so SMs never starve (the paper determined
the factor empirically).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.layout import TensorLayout
from repro.core.lru import BoundedLRU
from repro.core.permutation import Permutation
from repro.core.taxonomy import Schema
from repro.errors import PlanError, SchemaError
from repro.gpusim.spec import DeviceSpec
from repro.kernels.base import TransposeKernel
from repro.kernels.common import (
    OAGeometry,
    ODGeometry,
    dram_transaction_totals,
    normalize_oa_geometry,
    normalize_od_geometry,
    oa_coverages,
    od_coverages,
)
from repro.kernels.orthogonal_arbitrary import OrthogonalArbitraryKernel
from repro.kernels.orthogonal_distinct import OrthogonalDistinctKernel
from repro.kernels.orthogonal_distinct import PAD, TILE

#: The paper's empirical grid-overbooking multiplier.
DEFAULT_OVERBOOKING = 4

#: Pruning slack: a candidate survives phase 1 while its analytic
#: DRAM-transaction lower bound stays within this factor of the
#: incumbent's *predicted* time.  The bound is a true floor on the cost
#: model, but the regression predictors carry fit error, so the margin
#: absorbs model optimism (empirically the bound never exceeds ~0.92x
#: the prediction; 1.5x leaves a wide safety band).
PRUNE_SAFETY = 1.5

#: A predictor maps a candidate kernel to an estimated time in seconds.
#: Predictors may additionally expose ``predict_batch(kernels)`` to
#: score many candidates in one pass (see :mod:`repro.model.pretrained`).
Predictor = Callable[[TransposeKernel], float]

#: Fallback tie-break precedence between schemas when the caller has no
#: taxonomy decision to rank by: enum definition order, not the
#: alphabetical accident of the schema value strings.
_SCHEMA_RANK = {schema: i for i, schema in enumerate(Schema)}

#: Optional mapping from schema to its tie-break precedence (lower wins).
#: The planner passes the taxonomy decision's candidate order so exact
#: predicted-time ties resolve toward the decision's preferred schema,
#: matching the historical first-enumerated-wins behavior.
SchemaRank = Optional[dict]


def _rank_of(schema: Schema, schema_rank: SchemaRank) -> int:
    if schema_rank is None:
        return _SCHEMA_RANK[schema]
    return schema_rank.get(schema, len(schema_rank) + _SCHEMA_RANK[schema])


@dataclass(frozen=True)
class GroupChoice:
    """One derived side of a slice: prefix dims + block on the next."""

    prefix: int
    block: int
    size: int  # combined extent


def derive_group(
    extents: Sequence[int], limit: int
) -> Optional[GroupChoice]:
    """Alg. 3 lines 8-12/13-18: smallest prefix+block reaching ``limit``.

    ``extents`` are the candidate dims' extents in combining order
    (input order for the input side, output order for the output side).
    Returns ``None`` when the whole tensor is smaller than ``limit``.
    """
    if limit <= 0:
        raise ValueError(f"limit must be positive, got {limit}")
    vol = 1
    for k, e in enumerate(extents):
        if vol * e >= limit:
            block = math.ceil(limit / vol)
            return GroupChoice(prefix=k, block=block, size=vol * block)
        vol *= e
    return None


def max_slice_volume(
    layout: TensorLayout,
    spec: DeviceSpec,
    smem_per_block: int,
    overbooking: int = DEFAULT_OVERBOOKING,
) -> int:
    """Upper bound on per-block slice volume for grid overbooking.

    ``volume / slice_vol`` thread blocks must be at least ``overbooking``
    times the device's resident-block capacity (Alg. 3's ``maxlimit``).
    """
    resident_per_sm = max(1, spec.shared_mem_per_sm // max(smem_per_block, 1))
    resident_per_sm = min(resident_per_sm, spec.max_blocks_per_sm)
    min_num_blocks = spec.num_sms * resident_per_sm
    cap = layout.volume // max(overbooking * min_num_blocks, 1)
    return max(cap, spec.warp_size * spec.warp_size)


# ----------------------------------------------------------------------
# Orthogonal-Distinct enumeration
# ----------------------------------------------------------------------


def distinct_groups(
    extents: Sequence[int], ws: int, cap: int
) -> List[GroupChoice]:
    """All distinct groups derivable from warp-multiple targets.

    Equivalent to running :func:`derive_group` for every ``limit`` in
    ``ws, 2*ws, ...`` up to ``cap`` and deduplicating — the paper's two
    outer loops — but generated directly.
    """
    groups: List[GroupChoice] = []
    seen = set()
    # Pure-prefix groups *below* the warp-size target: when every
    # warp-sized grouping overlaps the other side, Alg. 3 settles for a
    # smaller disjoint group (the paper's 27^5 example has output slice
    # 27 < 32).  Prefixes at or above the warp size arise from the
    # derivation loop below (full-extent blocks normalize into prefixes).
    vol = 1
    for k, e in enumerate(extents):
        vol *= e
        if vol >= ws or vol > cap:
            break
        seen.add((k + 1, 1))
        groups.append(GroupChoice(prefix=k + 1, block=1, size=vol))
    limit = ws
    while limit <= cap:
        g = derive_group(extents, limit)
        if g is None:
            break
        candidates = [g]
        # Also consider the largest block *below* the derived one whose
        # size still clears the previous warp multiple — e.g. for extents
        # 27^5 and limit 192 the derived block is 8 (A = 216) but block 7
        # (A = 189 >= 176) is admissible and is the paper's Fig. 5 best.
        if g.block > 1:
            prev = GroupChoice(
                prefix=g.prefix,
                block=g.block - 1,
                size=g.size // g.block * (g.block - 1),
            )
            if prev.size >= ws:
                candidates.append(prev)
        for cand in candidates:
            key = (cand.prefix, cand.block)
            if key not in seen and cand.size <= max(cap, ws):
                seen.add(key)
                groups.append(cand)
        # Jump to the next limit that changes the derived group: the
        # smallest warp multiple exceeding the current derived size.
        limit = max(limit + ws, (g.size // ws + 1) * ws)
    return groups


def enumerate_orthogonal_distinct(
    layout: TensorLayout,
    perm: Permutation,
    spec: DeviceSpec,
    elem_bytes: int = 8,
    overbooking: int = DEFAULT_OVERBOOKING,
    max_configs: int = 256,
) -> List[OrthogonalDistinctKernel]:
    """All admissible OD slice configurations (deduplicated)."""
    ws = spec.warp_size
    smem = TILE * (TILE + PAD) * elem_bytes
    cap = max_slice_volume(layout, spec, smem, overbooking)
    out_extents = [layout.dims[d] for d in perm.mapping]
    kernels: List[OrthogonalDistinctKernel] = []
    for ga in distinct_groups(layout.dims, ws, cap):
        for gb in distinct_groups(out_extents, ws, max(cap // ga.size, ws)):
            if ga.size * gb.size > cap:
                break
            if len(kernels) >= max_configs:
                return kernels
            try:
                kernels.append(
                    OrthogonalDistinctKernel(
                        layout,
                        perm,
                        in_prefix=ga.prefix,
                        blockA=ga.block,
                        out_prefix=gb.prefix,
                        blockB=gb.block,
                        elem_bytes=elem_bytes,
                        spec=spec,
                    )
                )
            except SchemaError:
                pass  # overlapping groups — skip this combination
    return kernels


# ----------------------------------------------------------------------
# Orthogonal-Arbitrary enumeration
# ----------------------------------------------------------------------


def enumerate_orthogonal_arbitrary(
    layout: TensorLayout,
    perm: Permutation,
    spec: DeviceSpec,
    elem_bytes: int = 8,
    max_configs: int = 128,
) -> List[OrthogonalArbitraryKernel]:
    """All admissible OA slice configurations.

    The buffer holds the whole ``A x B`` slice, so admissibility is
    bounded by shared memory (the paper trained on ~10x fewer OA
    configurations for exactly this reason).
    """
    ws = spec.warp_size
    smem_words = spec.shared_mem_per_sm // elem_bytes
    out_extents = [layout.dims[d] for d in perm.mapping]
    kernels: List[OrthogonalArbitraryKernel] = []
    seen = set()
    # The empty output group (B = 1) matters when the input group itself
    # covers the output-fastest dims (e.g. a 16 x N matrix transpose
    # where blocking the slow dim makes both sides coalesced).
    empty_out = GroupChoice(prefix=0, block=1, size=1)
    for ga in distinct_groups(layout.dims, ws, smem_words):
        for gb in [empty_out] + distinct_groups(
            out_extents, ws, max(smem_words // ga.size, ws)
        ):
            if ga.size * gb.size > smem_words:
                break
            if len(kernels) >= max_configs:
                return kernels
            try:
                # pad="auto": TTLG's Sec. IV specialization — stagger the
                # buffer pitch when the gather pattern conflicts.
                k = OrthogonalArbitraryKernel(
                    layout,
                    perm,
                    in_prefix=ga.prefix,
                    blockA=ga.block,
                    out_prefix=gb.prefix,
                    blockB=gb.block,
                    elem_bytes=elem_bytes,
                    spec=spec,
                    pad="auto",
                )
            except SchemaError:
                continue  # infeasible combination (smem, empty group, ...)
            # Kernel construction normalizes parameters (full-extent and
            # input-covered blocks); dedupe on the normalized identity.
            key = (k.in_prefix, k.blockA, k.out_prefix, k.blockB, k.b_dim)
            if key not in seen:
                seen.add(key)
                kernels.append(k)
    return kernels


# ----------------------------------------------------------------------
# Lightweight candidate descriptors (two-phase search, phase 1)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CandidateDesc:
    """Phase-1 candidate: normalized slice parameters, no kernel object.

    Descriptors carry everything the planner needs to rank and prune a
    configuration — the normalized geometry and an analytic identity —
    deferring the O(slice) constructor work (pad search, offset arrays)
    to :func:`materialize_candidate` for the single winner.  FVI
    candidates are cheap to build, so their descriptors simply wrap a
    prebuilt ``kernel``.
    """

    schema: Schema
    in_prefix: int = 0
    blockA: int = 1
    out_prefix: int = 0
    blockB: int = 1
    b: int = 0  # FVI-Match-Small blocking factor
    A: int = 1
    B: int = 1
    geometry: Optional[Union[OAGeometry, ODGeometry]] = field(
        default=None, compare=False, repr=False
    )
    kernel: Optional[TransposeKernel] = field(
        default=None, compare=False, repr=False
    )

    @property
    def param_key(self) -> Tuple[int, int, int, int, int]:
        """Within-schema stable order used for deterministic tie-breaking."""
        return (self.in_prefix, self.blockA, self.out_prefix, self.blockB, self.b)


def candidate_sort_key(
    kernel: TransposeKernel, schema_rank: SchemaRank = None
) -> Tuple[int, int, int, int, int, int]:
    """The deterministic tie-break key recovered from a built kernel.

    The eager and two-phase paths break exact predicted-time ties on the
    same key — schema precedence first (the taxonomy decision's order
    when given), then the normalized slice parameters — so they always
    agree on the winner regardless of enumeration order.
    """
    return (
        _rank_of(kernel.schema, schema_rank),
        getattr(kernel, "in_prefix", 0),
        getattr(kernel, "blockA", 1),
        getattr(kernel, "out_prefix", 0),
        getattr(kernel, "blockB", 1),
        getattr(kernel, "b", 0),
    )


def enumerate_orthogonal_distinct_descs(
    layout: TensorLayout,
    perm: Permutation,
    spec: DeviceSpec,
    elem_bytes: int = 8,
    overbooking: int = DEFAULT_OVERBOOKING,
    max_configs: int = 256,
) -> List[CandidateDesc]:
    """Descriptor twin of :func:`enumerate_orthogonal_distinct`.

    Walks the identical group lattice (same caps, same break and skip
    conditions) but only normalizes parameters instead of constructing
    kernels, so the list corresponds 1:1 with the eager enumeration.
    """
    ws = spec.warp_size
    smem = TILE * (TILE + PAD) * elem_bytes
    cap = max_slice_volume(layout, spec, smem, overbooking)
    out_extents = [layout.dims[d] for d in perm.mapping]
    descs: List[CandidateDesc] = []
    for ga in distinct_groups(layout.dims, ws, cap):
        for gb in distinct_groups(out_extents, ws, max(cap // ga.size, ws)):
            if ga.size * gb.size > cap:
                break
            if len(descs) >= max_configs:
                return descs
            try:
                geom = normalize_od_geometry(
                    layout.dims,
                    perm.mapping,
                    ga.prefix,
                    ga.block,
                    gb.prefix,
                    gb.block,
                )
            except SchemaError:
                continue  # overlapping groups — skip this combination
            descs.append(
                CandidateDesc(
                    schema=Schema.ORTHOGONAL_DISTINCT,
                    in_prefix=geom.in_prefix,
                    blockA=geom.blockA,
                    out_prefix=geom.out_prefix,
                    blockB=geom.blockB,
                    A=geom.A,
                    B=geom.B,
                    geometry=geom,
                )
            )
    return descs


def enumerate_orthogonal_arbitrary_descs(
    layout: TensorLayout,
    perm: Permutation,
    spec: DeviceSpec,
    elem_bytes: int = 8,
    max_configs: int = 128,
) -> List[CandidateDesc]:
    """Descriptor twin of :func:`enumerate_orthogonal_arbitrary`.

    Normalization and the shared-memory bound reproduce exactly the
    :class:`OrthogonalArbitraryKernel` constructor checks, and the dedup
    key matches the eager loop's, so descriptor count and order equal
    the eager kernel list.
    """
    ws = spec.warp_size
    smem_words = spec.shared_mem_per_sm // elem_bytes
    out_extents = [layout.dims[d] for d in perm.mapping]
    descs: List[CandidateDesc] = []
    seen = set()
    empty_out = GroupChoice(prefix=0, block=1, size=1)
    for ga in distinct_groups(layout.dims, ws, smem_words):
        for gb in [empty_out] + distinct_groups(
            out_extents, ws, max(smem_words // ga.size, ws)
        ):
            if ga.size * gb.size > smem_words:
                break
            if len(descs) >= max_configs:
                return descs
            try:
                geom = normalize_oa_geometry(
                    layout.dims,
                    perm.mapping,
                    ga.prefix,
                    ga.block,
                    gb.prefix,
                    gb.block,
                )
            except SchemaError:
                continue  # empty input group
            if geom.A * geom.B * elem_bytes > spec.shared_mem_per_sm:
                continue  # slice exceeds shared memory
            key = (
                geom.in_prefix,
                geom.blockA,
                geom.out_prefix,
                geom.blockB,
                geom.b_dim,
            )
            if key in seen:
                continue
            seen.add(key)
            descs.append(
                CandidateDesc(
                    schema=Schema.ORTHOGONAL_ARBITRARY,
                    in_prefix=geom.in_prefix,
                    blockA=geom.blockA,
                    out_prefix=geom.out_prefix,
                    blockB=geom.blockB,
                    A=geom.A,
                    B=geom.B,
                    geometry=geom,
                )
            )
    return descs


def materialize_candidate(
    desc: CandidateDesc,
    layout: TensorLayout,
    perm: Permutation,
    spec: DeviceSpec,
    elem_bytes: int = 8,
) -> TransposeKernel:
    """Phase-2 construction of the (few) candidates that survive pruning."""
    if desc.kernel is not None:
        return desc.kernel
    if desc.schema is Schema.ORTHOGONAL_DISTINCT:
        return OrthogonalDistinctKernel(
            layout,
            perm,
            in_prefix=desc.in_prefix,
            blockA=desc.blockA,
            out_prefix=desc.out_prefix,
            blockB=desc.blockB,
            elem_bytes=elem_bytes,
            spec=spec,
        )
    if desc.schema is Schema.ORTHOGONAL_ARBITRARY:
        return OrthogonalArbitraryKernel(
            layout,
            perm,
            in_prefix=desc.in_prefix,
            blockA=desc.blockA,
            out_prefix=desc.out_prefix,
            blockB=desc.blockB,
            elem_bytes=elem_bytes,
            spec=spec,
            pad="auto",
        )
    raise PlanError(
        f"descriptor for schema {desc.schema} has no prebuilt kernel"
    )


#: Memoized lower bounds: the slice parameters plus problem identity
#: pin the normalized geometry, so repeat plans of the same problem skip
#: the coverage and transaction analysis entirely.
_LB_CACHE: BoundedLRU = BoundedLRU(maxsize=8192)


def clear_lower_bound_cache() -> None:
    """Forget memoized candidate lower bounds (cold-start benchmarks)."""
    _LB_CACHE.clear()


def candidate_lower_bound(
    desc: CandidateDesc,
    layout: TensorLayout,
    perm: Permutation,
    spec: DeviceSpec,
    elem_bytes: int = 8,
) -> float:
    """Analytic floor on any candidate's time: minimum DRAM traffic at
    full effective bandwidth.

    Transposition is bandwidth-bound, so a kernel can never run faster
    than its DRAM transactions streamed at the device's achievable peak
    — every other cost-model term only adds on top.  Candidates whose
    floor exceeds the incumbent's predicted time (times
    :data:`PRUNE_SAFETY`) are pruned before scoring.
    """
    key = (
        layout.dims,
        perm.mapping,
        desc.schema,
        desc.param_key,
        elem_bytes,
        spec,
    )
    hit = _LB_CACHE.get(key)
    if hit is not None:
        return hit
    if desc.geometry is not None:
        covs = (
            oa_coverages(desc.geometry, layout.rank)
            if isinstance(desc.geometry, OAGeometry)
            else od_coverages(desc.geometry, layout.rank)
        )
        by_dim = {c.dim: c for c in covs}
        ld_tx, st_tx = dram_transaction_totals(
            layout, perm, by_dim, elem_bytes, spec
        )
        bytes_moved = (ld_tx + st_tx) * spec.transaction_bytes
    else:
        # FVI kernels read and write fully coalesced in the ideal case.
        bytes_moved = 2 * layout.volume * elem_bytes
    bound = bytes_moved / spec.effective_bandwidth
    _LB_CACHE.put(key, bound)
    return bound


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SliceSearchResult:
    kernel: TransposeKernel
    predicted_time: float
    num_candidates: int
    #: Candidates actually scored by the predictor (two-phase search
    #: only; ``None`` means the eager path scored everything).
    num_scored: Optional[int] = None


def choose_best(
    candidates: Sequence[TransposeKernel],
    predictor: Predictor,
    schema_rank: SchemaRank = None,
) -> SliceSearchResult:
    """Alg. 3's selection loop: keep the best predicted candidate.

    Exact predicted-time ties are broken on :func:`candidate_sort_key`
    so the winner never depends on enumeration order.
    """
    if not candidates:
        raise PlanError("no admissible slice configuration")
    best, best_t, best_key = None, math.inf, None
    for k in candidates:
        t = predictor(k)
        key = candidate_sort_key(k, schema_rank)
        if t < best_t or (t == best_t and (best_key is None or key < best_key)):
            best, best_t, best_key = k, t, key
    assert best is not None
    return SliceSearchResult(
        kernel=best, predicted_time=best_t, num_candidates=len(candidates)
    )


def _predict_many(
    predictor: Predictor, kernels: Sequence[TransposeKernel]
) -> np.ndarray:
    """Score kernels through ``predictor.predict_batch`` when available."""
    batch = getattr(predictor, "predict_batch", None)
    if batch is not None:
        return np.asarray(batch(kernels), dtype=float)
    return np.asarray([predictor(k) for k in kernels], dtype=float)


def _incumbent_threshold(
    predictor: Predictor, incumbent: TransposeKernel, prune_safety: float
) -> float:
    """The phase-1 pruning threshold from the incumbent's prediction.

    Predictors that expose ``predict_with_uncertainty`` (the feedback
    loop's GP-backed surface) widen the margin by one posterior standard
    deviation, so a retrained model's overconfident mean never prunes
    candidates it is actually unsure about.  Point-estimate predictors
    keep the bare mean.
    """
    with_unc = getattr(predictor, "predict_with_uncertainty", None)
    if with_unc is not None:
        mean, std = with_unc(incumbent)
        return (float(mean) + max(float(std), 0.0)) * prune_safety
    return float(predictor(incumbent)) * prune_safety


def choose_best_two_phase(
    descs: Sequence[CandidateDesc],
    layout: TensorLayout,
    perm: Permutation,
    spec: DeviceSpec,
    elem_bytes: int,
    predictor: Predictor,
    prune_safety: float = PRUNE_SAFETY,
    schema_rank: SchemaRank = None,
) -> SliceSearchResult:
    """Pruned, batched selection over descriptors (two-phase, phase 2).

    The candidate with the smallest analytic lower bound seeds the
    incumbent; every descriptor whose bound exceeds ``prune_safety``
    times the incumbent's predicted time (widened by the posterior std
    when the predictor reports uncertainty) is discarded unscored.  The
    survivors are materialized and scored in one batch, ties break on
    the same key as :func:`choose_best`, and the winner's time is
    re-derived through the scalar predictor so the result is
    bit-identical to the eager path.
    """
    if not descs:
        raise PlanError("no admissible slice configuration")
    if len(descs) == 1:
        only = materialize_candidate(descs[0], layout, perm, spec, elem_bytes)
        return SliceSearchResult(
            kernel=only,
            predicted_time=float(predictor(only)),
            num_candidates=1,
            num_scored=1,
        )

    def tie_key(desc: CandidateDesc):
        return (_rank_of(desc.schema, schema_rank),) + desc.param_key

    bounds = [
        candidate_lower_bound(d, layout, perm, spec, elem_bytes)
        for d in descs
    ]
    order = sorted(
        range(len(descs)), key=lambda i: (bounds[i], tie_key(descs[i]))
    )
    first = order[0]
    incumbent = materialize_candidate(descs[first], layout, perm, spec, elem_bytes)
    threshold = _incumbent_threshold(predictor, incumbent, prune_safety)
    # The incumbent always survives, even if a (mis)fit predictor lands
    # below its own analytic floor.
    survivors = [i for i in order if i == first or bounds[i] <= threshold]
    kernels = [
        incumbent
        if i == first
        else materialize_candidate(descs[i], layout, perm, spec, elem_bytes)
        for i in survivors
    ]
    times = _predict_many(predictor, kernels)
    best_j = min(
        range(len(survivors)),
        key=lambda j: (times[j], tie_key(descs[survivors[j]])),
    )
    best = kernels[best_j]
    # Batched scoring can differ from the scalar predictor in the last
    # ulp (BLAS summation order); re-derive the winner's time through
    # the scalar path so the result is bit-identical to the eager one.
    if getattr(predictor, "predict_batch", None) is not None:
        best_t = float(predictor(best))
    else:
        best_t = float(times[best_j])
    return SliceSearchResult(
        kernel=best,
        predicted_time=best_t,
        num_candidates=len(descs),
        num_scored=len(survivors),
    )
