"""Offline model training: run the simulator over the dataset, fit OLS.

Mirrors the paper's pipeline: every admissible slice configuration of
every dataset case is "measured" (simulated with deterministic jitter so
a linear fit cannot be trivially exact), the per-kernel feature matrices
are assembled, a 4/5 - 1/5 split fits and validates, and the precision
metric ``mean(|actual-pred|/actual)*100`` is reported for both splits
(paper: ~4.16 % for Orthogonal-Distinct, ~11 % for
Orthogonal-Arbitrary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.fusion import fuse_indices
from repro.core.slices import (
    enumerate_orthogonal_arbitrary,
    enumerate_orthogonal_distinct,
)
from repro.core.taxonomy import Schema
from repro.gpusim.cost import CostModel
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec
from repro.kernels.base import TransposeKernel
from repro.kernels.fvi_match_large import FviMatchLargeKernel
from repro.model.dataset import TransposeCase, generate_cases, train_test_split
from repro.model.features import FEATURE_NAMES, feature_vector
from repro.model.regression import FittedModel, LinearRegression

#: Jitter applied to training "measurements" (~2 % noise, matching the
#: paper's sub-percent run-to-run variance plus model-form error).
TRAIN_JITTER = 0.02


@dataclass
class TrainingReport:
    """Fitted models plus the paper's precision metrics per schema."""

    models: Dict[Schema, FittedModel]
    train_error_pct: Dict[Schema, float]
    test_error_pct: Dict[Schema, float]
    n_points: Dict[Schema, int]

    def format_summary(self) -> str:
        lines = []
        for schema, model in self.models.items():
            lines.append(f"== {schema.value} ({self.n_points[schema]} points) ==")
            if model.summary is not None:
                lines.append(model.summary.format_table())
            lines.append(
                f"precision error: train {self.train_error_pct[schema]:.3f} %"
                f"  test {self.test_error_pct[schema]:.3f} %"
            )
        return "\n".join(lines)


def candidate_kernels_for_case(
    case: TransposeCase,
    spec: DeviceSpec,
    elem_bytes: int = 8,
    max_od: int = 48,
    max_oa: int = 32,
) -> List[TransposeKernel]:
    """Every kernel instance the planner could consider for one case."""
    from repro.core.plan import fvi_small_candidates

    fused = fuse_indices(case.layout, case.permutation)
    layout, perm = fused.layout, fused.perm
    kernels: List[TransposeKernel] = []
    kernels += enumerate_orthogonal_distinct(
        layout, perm, spec, elem_bytes, max_configs=max_od
    )
    kernels += enumerate_orthogonal_arbitrary(
        layout, perm, spec, elem_bytes, max_configs=max_oa
    )
    if perm.fvi_matches():
        kernels.append(FviMatchLargeKernel(layout, perm, elem_bytes, spec))
        if layout.dims[0] < spec.warp_size and layout.rank >= 3:
            kernels.extend(fvi_small_candidates(layout, perm, spec, elem_bytes))
    return kernels


def measure(
    kernel: TransposeKernel,
    cost_model: CostModel,
) -> float:
    """One simulated 'measurement' with deterministic jitter."""
    key = (
        type(kernel).__name__,
        kernel.layout.dims,
        kernel.perm.mapping,
        kernel.launch_geometry.num_blocks,
        kernel.elem_bytes,
    )
    return kernel.simulated_time(cost_model, jitter_key=key)


def collect_points(
    cases: Sequence[TransposeCase],
    spec: DeviceSpec = KEPLER_K40C,
    elem_bytes: int = 8,
    jitter: float = TRAIN_JITTER,
) -> Dict[Schema, Tuple[np.ndarray, np.ndarray]]:
    """Simulate every candidate of every case, grouped by schema.

    Returns ``{schema: (X, y)}`` with X the feature matrix and y the
    jittered simulated times.
    """
    cm = CostModel(spec, jitter_scale=jitter)
    feats: Dict[Schema, List[np.ndarray]] = {}
    times: Dict[Schema, List[float]] = {}
    for case in cases:
        for kernel in candidate_kernels_for_case(case, spec, elem_bytes):
            if kernel.schema not in FEATURE_NAMES:
                continue
            feats.setdefault(kernel.schema, []).append(feature_vector(kernel))
            times.setdefault(kernel.schema, []).append(measure(kernel, cm))
    return {
        s: (np.vstack(feats[s]), np.asarray(times[s], dtype=np.float64))
        for s in feats
    }


def train(
    cases: Optional[Sequence[TransposeCase]] = None,
    spec: DeviceSpec = KEPLER_K40C,
    elem_bytes: int = 8,
    train_fraction: float = 0.8,
    seed: int = 7,
    jitter: float = TRAIN_JITTER,
) -> TrainingReport:
    """Full training pipeline; ``cases`` defaults to the paper-style grid."""
    if cases is None:
        cases = generate_cases()
    points = collect_points(cases, spec, elem_bytes, jitter)
    reg = LinearRegression()
    models: Dict[Schema, FittedModel] = {}
    tr_err: Dict[Schema, float] = {}
    te_err: Dict[Schema, float] = {}
    n_pts: Dict[Schema, int] = {}
    for schema, (X, y) in points.items():
        rows = list(range(len(y)))
        tr_rows, te_rows = train_test_split(rows, train_fraction, seed)
        if len(tr_rows) <= X.shape[1] + 1 or not te_rows:
            # Too few points to fit this schema — skip it; the planner
            # falls back to the analytic cost model for unfitted schemas.
            continue
        m = reg.fit(X[tr_rows], y[tr_rows], FEATURE_NAMES[schema])
        models[schema] = m
        tr_err[schema] = m.precision_error_pct(X[tr_rows], y[tr_rows])
        te_err[schema] = m.precision_error_pct(X[te_rows], y[te_rows])
        n_pts[schema] = len(y)
    return TrainingReport(
        models=models,
        train_error_pct=tr_err,
        test_error_pct=te_err,
        n_points=n_pts,
    )
