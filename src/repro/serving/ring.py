"""Consistent-hash ring routing plan content keys to service replicas.

Each replica owns ``vnodes`` points on a 64-bit hash circle; a key
routes to the first replica point clockwise of the key's own hash.  Two
properties make this the right router for a sharded plan-serving tier:

- **Stability** — every key deterministically maps to one replica, so a
  replica sees a stable subset of the key space and its bounded
  program/plan caches stay hot (the cuTT/PR-3 warm-reuse insight,
  shard-level).  The hash is :func:`hashlib.blake2b` over the key and
  replica label bytes: deterministic across processes, interpreter
  restarts, and ``PYTHONHASHSEED`` — every front end instance routes
  identically.
- **Bounded movement** — adding or removing one replica only remaps the
  keys whose clockwise-first point belonged to the affected arcs, ~1/N
  of the key space, instead of rehashing everything (what ``hash(key) %
  N`` would do).

``tests/test_serving_ring.py`` pins both properties plus the imbalance
bound over zipf-weighted key sets.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Hashable, List, Sequence

#: Points per replica.  More vnodes -> tighter load spread between
#: replicas at the cost of a larger (still tiny) routing table.
DEFAULT_VNODES = 128


def _hash64(data: bytes) -> int:
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


class HashRing:
    """A consistent-hash ring over hashable replica labels."""

    def __init__(self, nodes: Sequence[Hashable] = (), vnodes: int = DEFAULT_VNODES):
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = vnodes
        self._points: List[int] = []
        self._owners: Dict[int, Hashable] = {}
        self._nodes: List[Hashable] = []
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    def add(self, node: Hashable) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        label = repr(node).encode("utf-8")
        for v in range(self.vnodes):
            point = _hash64(label + b"#" + str(v).encode("ascii"))
            # A 64-bit collision between distinct vnode labels is
            # astronomically unlikely; first owner wins if it happens.
            if point not in self._owners:
                self._owners[point] = node
                bisect.insort(self._points, point)
        self._nodes.append(node)

    def remove(self, node: Hashable) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node!r} is not on the ring")
        self._nodes.remove(node)
        stale = [p for p, owner in self._owners.items() if owner == node]
        for point in stale:
            del self._owners[point]
        stale_set = set(stale)
        self._points = [p for p in self._points if p not in stale_set]

    @property
    def nodes(self) -> List[Hashable]:
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    def route(self, key: str) -> Hashable:
        """The replica owning ``key`` (clockwise-first point)."""
        if not self._points:
            raise ValueError("cannot route on an empty ring")
        point = _hash64(key.encode("utf-8"))
        idx = bisect.bisect_right(self._points, point)
        if idx == len(self._points):
            idx = 0  # wrap past the top of the circle
        return self._owners[self._points[idx]]

    def distribution(self, keys: Sequence[str]) -> Dict[Hashable, int]:
        """How many of ``keys`` each replica owns (diagnostics/tests)."""
        counts: Dict[Hashable, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.route(key)] += 1
        return counts
