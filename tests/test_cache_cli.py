"""Tests for the plan cache and the CLI entry point."""

import json
import subprocess
import sys

import pytest

from repro.core.cache import PlanCache, cached_plan, global_cache
from repro.gpusim.spec import KEPLER_K40C, PASCAL_P100
from repro.model.pretrained import oracle_predictor

ORACLE = oracle_predictor()


class TestPlanCache:
    def test_hit_returns_same_plan(self):
        cache = PlanCache()
        a = cache.get((8, 8, 8), (2, 1, 0), predictor=ORACLE)
        b = cache.get((8, 8, 8), (2, 1, 0), predictor=ORACLE)
        assert a is b
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_distinct_problems_miss(self):
        cache = PlanCache()
        cache.get((8, 8, 8), (2, 1, 0), predictor=ORACLE)
        cache.get((8, 8, 8), (1, 2, 0), predictor=ORACLE)
        assert cache.stats.misses == 2

    def test_device_in_key(self):
        cache = PlanCache()
        a = cache.get((8, 8, 8), (2, 1, 0), spec=KEPLER_K40C, predictor=ORACLE)
        b = cache.get(
            (8, 8, 8), (2, 1, 0), spec=PASCAL_P100,
            predictor=oracle_predictor(PASCAL_P100),
        )
        assert a is not b

    def test_eviction(self):
        cache = PlanCache(capacity=2)
        cache.get((4, 4), (1, 0), predictor=ORACLE)
        cache.get((4, 8), (1, 0), predictor=ORACLE)
        cache.get((8, 4), (1, 0), predictor=ORACLE)
        assert len(cache) == 2
        assert cache.stats.evictions == 1

    def test_lru_order(self):
        cache = PlanCache(capacity=2)
        a = cache.get((4, 4), (1, 0), predictor=ORACLE)
        cache.get((4, 8), (1, 0), predictor=ORACLE)
        cache.get((4, 4), (1, 0), predictor=ORACLE)  # refresh a
        cache.get((8, 4), (1, 0), predictor=ORACLE)  # evicts (4,8)
        assert cache.get((4, 4), (1, 0), predictor=ORACLE) is a

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_global_cache_shared(self):
        global_cache().clear()
        a = cached_plan((6, 6, 6), (2, 0, 1), predictor=ORACLE)
        b = cached_plan((6, 6, 6), (2, 0, 1), predictor=ORACLE)
        assert a is b
        assert global_cache().stats.hit_rate == 0.5

    def test_same_name_different_geometry_does_not_alias(self):
        # Two specs sharing a *name* but differing in any field must get
        # distinct cache entries (the key carries a content fingerprint).
        cache = PlanCache()
        impostor = KEPLER_K40C.with_overrides(num_sms=2)
        assert impostor.name == KEPLER_K40C.name
        a = cache.get((8, 8, 8), (2, 1, 0), spec=KEPLER_K40C, predictor=ORACLE)
        b = cache.get((8, 8, 8), (2, 1, 0), spec=impostor, predictor=ORACLE)
        assert a is not b
        assert cache.stats.misses == 2
        assert len(cache) == 2

    def test_snapshot_stats_reset_is_windowed(self):
        cache = PlanCache()
        cache.get((8, 8, 8), (2, 1, 0), predictor=ORACLE)
        cache.get((8, 8, 8), (2, 1, 0), predictor=ORACLE)
        snap = cache.snapshot_stats(reset=True)
        assert (snap.hits, snap.misses) == (1, 1)
        after = cache.snapshot_stats()
        assert (after.hits, after.misses) == (0, 0)
        # reset() zeroes in place: the stats object identity is stable so
        # concurrent readers never observe a half-swapped object.
        assert cache.stats is not snap

    def test_stats_reset_in_place(self):
        stats_obj = PlanCache().stats
        stats_obj.hits = 3
        stats_obj.store_hits = 2
        stats_obj.reset()
        assert stats_obj.hits == 0
        assert stats_obj.store_hits == 0

    def test_event_hook_sees_hits_misses_builds(self):
        events = []
        cache = PlanCache(on_event=events.append)
        cache.get((8, 8, 8), (2, 1, 0), predictor=ORACLE)
        cache.get((8, 8, 8), (2, 1, 0), predictor=ORACLE)
        assert events == ["miss", "build", "hit"]

    def test_eviction_events(self):
        events = []
        cache = PlanCache(capacity=1, on_event=events.append)
        cache.get((4, 4), (1, 0), predictor=ORACLE)
        cache.get((4, 8), (1, 0), predictor=ORACLE)
        assert events.count("eviction") == 1


def run_cli(*args: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestCli:
    def test_plan(self):
        out = run_cli("plan", "16,16,16", "2,1,0")
        assert "schema" in out and "bandwidth" in out

    def test_predict(self):
        out = run_cli("predict", "32,8,16", "1,2,0")
        assert "kernel time" in out

    def test_compare(self):
        out = run_cli("compare", "8,8,8,8", "3,2,1,0")
        assert "TTLG" in out and "cuTT Measure" in out

    def test_device(self):
        out = run_cli("device", "p100")
        assert "P100" in out

    def test_plan_f32(self):
        out = run_cli("plan", "16,16,16", "2,1,0", "--dtype", "f32")
        assert "schema" in out

    def test_bad_dims_rejected(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "plan", "16,x", "1,0"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode != 0

    def test_predict_dtype_parity(self):
        out = run_cli("predict", "16,16,16", "2,1,0", "--dtype", "f32")
        assert "kernel time" in out

    def test_unknown_dtype_lists_supported(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "plan", "8,8,8", "2,1,0",
             "--dtype", "f16"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode != 0
        assert "f16" in proc.stderr
        assert "f32" in proc.stderr and "f64" in proc.stderr


class TestServeStatsCli:
    def test_serve_then_stats(self, tmp_path):
        state = str(tmp_path / "state")
        out = run_cli(
            "serve",
            "--problem", "8,8,8:2,1,0",
            "--problem", "16,4,8:1,2,0",
            "--requests", "6",
            "--clients", "2",
            "--streams", "2",
            "--state-dir", state,
        )
        assert "served 6 requests" in out
        assert "plans: 2 built" in out

        stats_out = run_cli("stats", "--state-dir", state)
        assert "plans_built" in stats_out
        assert "executions_completed" in stats_out
        assert "cache:" in stats_out and "store:" in stats_out

        raw = run_cli("stats", "--state-dir", state, "--json")
        payload = json.loads(raw)
        assert payload["metrics"]["counters"]["plans_built"] == 2

        # A second serve session warm-starts from the persistent store.
        out2 = run_cli(
            "serve",
            "--problem", "8,8,8:2,1,0",
            "--problem", "16,4,8:1,2,0",
            "--requests", "6",
            "--clients", "2",
            "--streams", "2",
            "--state-dir", state,
        )
        assert "plans: 0 built, 2 restored" in out2

    def test_stats_without_serve(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "stats",
             "--state-dir", str(tmp_path / "empty")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "no metrics snapshot" in proc.stderr
