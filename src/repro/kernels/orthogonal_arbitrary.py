"""Orthogonal-Arbitrary kernel (Alg. 5, offsets per Alg. 4).

Used when the combined input-FVI group and output-FVI group overlap, so
the slice cannot be viewed as a 2D orthogonal product.  The whole
``A x B`` slice (``A`` = input-group volume, ``B`` = volume of the output
group's dims *not* in the input group) is staged in shared memory:

- copy-in: row ``y`` of the buffer receives ``A`` contiguous input
  elements starting at ``in_base + input_offset[y]`` — fully coalesced;
- copy-out: threads walk the slice in *output-linear* order ``t``,
  writing ``out_base + out_offset[t]`` (coalesced, with breaks where the
  covered output dims are exhausted) while gathering from
  ``sm_out_offset[t]`` — an arbitrary shared-memory pattern that may
  incur bank conflicts (Sec. IV: "it could suffer from some shared
  memory bank conflict").

Unlike Orthogonal-Distinct's fixed 32x33 buffer, the buffer size is the
slice volume, so admissible slice sizes are bounded by the shared-memory
capacity (why the paper's OA model trained on far fewer configurations).
"""

from __future__ import annotations

import functools
import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.taxonomy import Schema
from repro.errors import SchemaError
from repro.gpusim.counters import KernelCounters, LaunchGeometry
from repro.gpusim.engine import WarpAccess
from repro.gpusim.sharedmem import conflict_degrees_rows
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec
from repro.core.lru import BoundedLRU
from repro.kernels.base import TransposeKernel
from repro.kernels.common import (
    Coverage,
    SliceCoverage,
    block_gather_indices,
    ceil_div,
    dram_transaction_totals,
    normalize_oa_geometry,
    oa_coverages,
    slice_gather_rel,
)

#: Row pitches Sec. IV's pad specialization searches over.
PAD_CANDIDATES = (0, 1, 2, 3, 4)


# ----------------------------------------------------------------------
# Memoized, descriptor-keyed slice-geometry helpers.
#
# Alg. 3 enumerates dozens of OA candidates per plan and the two-phase
# planner scores them without keeping kernel objects alive, so the
# O(slice) work — building the copy-out gather pattern and sampling its
# bank conflicts per pad — lives here, keyed by the *normalized* slice
# parameters.  Candidates with identical geometry (including the
# coarsened rebuild of the winning candidate, and repeated plans for the
# same problem) share one computation.
# ----------------------------------------------------------------------


@functools.lru_cache(maxsize=256)
def _full_slice_sm_offsets(
    dims: Tuple[int, ...],
    out_order: Tuple[int, ...],
    in_prefix: int,
    blockA: int,
    out_prefix: int,
    blockB: int,
) -> np.ndarray:
    """``sm_out_offset`` of the full slice (Alg. 4's buffer gather).

    Mirrors the ``sm_off`` component of
    :meth:`OrthogonalArbitraryKernel.offset_arrays` for the full-slice
    variant (``sizes={}``); equality is pinned by a unit test.
    """
    geom = normalize_oa_geometry(
        dims, out_order, in_prefix, blockA, out_prefix, blockB
    )
    oo_extents = [(d, dims[d]) for d in geom.only_out_full]
    if geom.b_dim is not None:
        oo_extents.append((geom.b_dim, geom.blockB))
    slice_dims = set(geom.in_group) | set(geom.only_out)
    covered: List[Tuple[int, int]] = []
    for d in out_order:
        if d not in slice_dims:
            continue
        if d == geom.a_dim:
            covered.append((d, geom.blockA))
        elif d == geom.b_dim:
            covered.append((d, geom.blockB))
        else:
            covered.append((d, dims[d]))
    col_stride: Dict[int, int] = {}
    s = 1
    for d in range(geom.in_prefix):
        col_stride[d] = s
        s *= dims[d]
    if geom.a_dim is not None:
        col_stride[geom.a_dim] = s
    row_stride: Dict[int, int] = {}
    s = 1
    for d, e in oo_extents:
        row_stride[d] = s
        s *= e
    n = geom.A * geom.B
    sm_off = np.zeros(n, dtype=np.int64)
    rem = np.arange(n, dtype=np.int64)
    for d, e in covered:
        digit = rem % e
        rem = rem // e
        if d in col_stride:
            sm_off += digit * col_stride[d]
        else:
            sm_off += digit * row_stride[d] * geom.A
    return sm_off


def _sampled_warp_rows(
    sm_off: np.ndarray, ws: int, samples: int
) -> np.ndarray:
    """The warp-sized gather rows the conflict estimate samples."""
    nwarps = len(sm_off) // ws
    if nwarps == 0:
        return np.empty((0, ws), dtype=np.int64)
    step = max(1, nwarps // max(samples, 1))
    warp_ids = np.asarray(
        list(range(0, nwarps, step))[:samples], dtype=np.int64
    )
    idx = warp_ids[:, None] * ws + np.arange(ws, dtype=np.int64)[None, :]
    return sm_off[idx]


def _pad_degrees(
    rows: np.ndarray,
    a_size: int,
    pads: Sequence[int],
    elem_bytes: int,
    spec: DeviceSpec,
) -> List[float]:
    """Mean bank-conflict degree of the sampled gather rows per pad.

    One vectorized pass over the (pad x warp) batch instead of a
    ``np.unique`` pair per warp per pad.
    """
    if not pads:
        return []
    if rows.size == 0:
        return [1.0] * len(pads)
    pad_arr = np.asarray(pads, dtype=np.int64)[:, None, None]
    off = rows[None, :, :]
    padded = (off // a_size) * (a_size + pad_arr) + off % a_size
    words = padded * elem_bytes // spec.bank_bytes
    n_pads, n_warps, lanes = words.shape
    deg = conflict_degrees_rows(
        words.reshape(n_pads * n_warps, lanes), spec.shared_mem_banks
    ).reshape(n_pads, n_warps)
    return [float(np.mean(deg[i])) for i in range(n_pads)]


@functools.lru_cache(maxsize=1024)
def pad_conflict_degree(
    dims: Tuple[int, ...],
    out_order: Tuple[int, ...],
    in_prefix: int,
    blockA: int,
    out_prefix: int,
    blockB: int,
    pad: int,
    elem_bytes: int,
    spec: DeviceSpec,
    samples: int = 8,
) -> float:
    """Average copy-out conflict degree for one explicit row pitch."""
    geom = normalize_oa_geometry(
        dims, out_order, in_prefix, blockA, out_prefix, blockB
    )
    sm_off = _full_slice_sm_offsets(
        dims, out_order, in_prefix, blockA, out_prefix, blockB
    )
    rows = _sampled_warp_rows(sm_off, spec.warp_size, samples)
    return _pad_degrees(rows, geom.A, [pad], elem_bytes, spec)[0]


@functools.lru_cache(maxsize=1024)
def auto_pad_and_degree(
    dims: Tuple[int, ...],
    out_order: Tuple[int, ...],
    in_prefix: int,
    blockA: int,
    out_prefix: int,
    blockB: int,
    elem_bytes: int,
    spec: DeviceSpec,
    samples: int = 8,
) -> Tuple[int, float]:
    """TTLG's ``pad="auto"`` specialization: least-conflicting pad in
    :data:`PAD_CANDIDATES` plus its degree, memoized per geometry.

    Selection semantics match the historical per-pad loop exactly:
    first pad achieving the minimum wins, the search stops early at a
    conflict-free pad, and pads whose padded buffer exceeds shared
    memory are never considered.
    """
    geom = normalize_oa_geometry(
        dims, out_order, in_prefix, blockA, out_prefix, blockB
    )
    sm_off = _full_slice_sm_offsets(
        dims, out_order, in_prefix, blockA, out_prefix, blockB
    )
    rows = _sampled_warp_rows(sm_off, spec.warp_size, samples)
    pads: List[int] = []
    for p in PAD_CANDIDATES:
        if (geom.A + p) * geom.B * elem_bytes > spec.shared_mem_per_sm:
            break
        pads.append(p)
    if not pads:
        # Even the unpadded buffer exceeds shared memory; the kernel
        # constructor rejects such slices, but report pad 0 faithfully.
        return 0, _pad_degrees(rows, geom.A, [0], elem_bytes, spec)[0]
    degrees = _pad_degrees(rows, geom.A, pads, elem_bytes, spec)
    best_pad, best_degree = 0, float("inf")
    for p, degree in zip(pads, degrees):
        if degree < best_degree:
            best_degree, best_pad = degree, p
        if degree <= 1.0:
            break
    return best_pad, best_degree


#: Memoized model features per kernel variant — candidates with the same
#: normalized geometry (and pad/coarsening) across plans share one
#: feature computation, the dominant per-candidate scoring cost.
#: LRU-bounded: overflow evicts the coldest geometry instead of
#: dropping the whole cache.
_FEATURE_CACHE: BoundedLRU = BoundedLRU(maxsize=4096)


def clear_geometry_caches() -> None:
    """Drop the memoized slice-geometry helpers (cold-start benchmarks)."""
    _full_slice_sm_offsets.cache_clear()
    pad_conflict_degree.cache_clear()
    auto_pad_and_degree.cache_clear()
    _FEATURE_CACHE.clear()


class OrthogonalArbitraryKernel(TransposeKernel):
    """Whole-slice shared-memory staging with indirection arrays."""

    schema = Schema.ORTHOGONAL_ARBITRARY

    THREADS = 256

    def __init__(
        self,
        layout: TensorLayout,
        perm: Permutation,
        in_prefix: int,
        blockA: int,
        out_prefix: int,
        blockB: int,
        elem_bytes: int = 8,
        spec: DeviceSpec = KEPLER_K40C,
        pad: int | str = 0,
        coarsen: Optional[Tuple[int, int]] = None,
    ):
        """``pad`` adds words to the buffer's row pitch to stagger the
        copy-out gather across banks (Sec. IV: bank conflicts "can be
        solved by specialization in many cases").  ``pad="auto"`` picks
        the least-conflicting pad in 0..4 — the TTLG specialization; the
        cuTT baseline uses the unpadded default.

        ``coarsen = (dim, factor)`` applies Sec. IV-A thread coarsening:
        one thread block processes ``factor`` consecutive sub-slices
        along the given grid dimension, amortizing the mod/div base
        decode (subsequent bases are stride additions).  Total data
        movement is unchanged; the launch has fewer blocks and fewer
        special instructions.
        """
        super().__init__(layout, perm, elem_bytes, spec)
        rank, dims = layout.rank, layout.dims
        out_order = perm.mapping
        geom = normalize_oa_geometry(
            dims, out_order, in_prefix, blockA, out_prefix, blockB
        )
        self.geometry = geom
        self.in_prefix, self.blockA = geom.in_prefix, geom.blockA
        self.out_prefix, self.blockB = geom.out_prefix, geom.blockB
        self.a_dim, self.b_dim = geom.a_dim, geom.b_dim
        self.in_group = set(geom.in_group)
        # Output-group dims not in the input group, fastest-output first.
        self.only_out: List[int] = list(geom.only_out)
        self.only_out_full = list(geom.only_out_full)
        self.A, self.B = geom.A, geom.B
        smem_bytes = self.A * self.B * elem_bytes
        if smem_bytes > spec.shared_mem_per_sm:
            raise SchemaError(
                f"slice of {self.A}x{self.B} elements needs {smem_bytes} B "
                f"shared memory; SM has {spec.shared_mem_per_sm} B"
            )

        self.coverage = SliceCoverage(layout, perm, oa_coverages(geom, rank))
        self._out_pos = {d: q for q, d in enumerate(out_order)}
        self._offset_cache: Dict[Tuple[Tuple[int, int], ...], Tuple[
            np.ndarray, np.ndarray, np.ndarray
        ]] = {}
        self._dram_tx: Optional[Tuple[int, int]] = None

        if pad == "auto":
            self.pad = self._choose_pad()
        else:
            self.pad = int(pad)
            if self.pad < 0:
                raise SchemaError(f"pad must be >= 0, got {pad}")
        if (self.A + self.pad) * self.B * elem_bytes > spec.shared_mem_per_sm:
            # Padded buffer no longer fits: drop back to unpadded.
            self.pad = 0

        self.coarsen: Optional[Tuple[int, int]] = None
        if coarsen is not None:
            c_dim, c_factor = coarsen
            cov = self.coverage.by_dim.get(c_dim)
            if cov is None or cov.coverage is not Coverage.OUTER:
                raise SchemaError(
                    f"coarsening dim {c_dim} is not a grid dimension"
                )
            if not 1 < c_factor <= dims[c_dim]:
                raise SchemaError(
                    f"coarsening factor {c_factor} out of range for dim "
                    f"{c_dim} (extent {dims[c_dim]})"
                )
            self.coarsen = (c_dim, c_factor)

    def _geometry_key(self) -> Tuple[Tuple[int, ...], Tuple[int, ...], int, int, int, int]:
        return (
            self.layout.dims,
            self.perm.mapping,
            self.in_prefix,
            self.blockA,
            self.out_prefix,
            self.blockB,
        )

    def _choose_pad(self, candidates=PAD_CANDIDATES) -> int:
        """Least-conflicting row pitch for the copy-out gather."""
        if tuple(candidates) == PAD_CANDIDATES:
            pad, degree = auto_pad_and_degree(
                *self._geometry_key(), self.elem_bytes, self.spec
            )
            # The degree under the chosen pad doubles as the smem-conflict
            # feature; seed the per-instance cache so scoring never
            # re-samples the gather.
            self._smem_degree = degree
            return pad
        best_pad, best_degree = 0, float("inf")
        for p in candidates:
            if (self.A + p) * self.B * self.elem_bytes > self.spec.shared_mem_per_sm:
                break
            degree = self._conflict_degree_for_pad(p)
            if degree < best_degree:
                best_degree, best_pad = degree, p
            if degree <= 1.0:
                break
        return best_pad

    # ------------------------------------------------------------------
    @property
    def coarsen_factor(self) -> int:
        return self.coarsen[1] if self.coarsen else 1

    @property
    def launch_geometry(self) -> LaunchGeometry:
        # No point launching more threads than slice elements; round the
        # block down to the warp granularity of the slice volume.
        ws = self.spec.warp_size
        threads = min(self.THREADS, ceil_div(self.A * self.B, ws) * ws)
        blocks = self.coverage.num_blocks
        if self.coarsen:
            c_dim, c_factor = self.coarsen
            extent = self.layout.dims[c_dim]
            # The coarsened dim contributes ceil(extent/factor) grid
            # positions instead of extent.
            blocks = blocks // extent * ceil_div(extent, c_factor)
        return LaunchGeometry(
            num_blocks=blocks,
            threads_per_block=threads,
            shared_mem_per_block=(self.A + self.pad) * self.B * self.elem_bytes,
        )

    # -- covered output dims, in output order ----------------------------
    def _covered_sizes(self, sizes: Dict[int, int]) -> List[Tuple[int, int]]:
        """``(dim, covered_extent)`` for every slice dim, in output order.

        Non-slice dims are skipped (they are grid dims); the write phase
        enumerates the slice over exactly these digits, so output runs
        break wherever a skipped dim interrupts the output prefix.
        """
        out: List[Tuple[int, int]] = []
        dims = self.layout.dims
        slice_dims = self.in_group | set(self.only_out)
        for d in self.perm.mapping:
            if d not in slice_dims:
                continue
            if d == self.a_dim:
                out.append((d, sizes.get(d, self.blockA)))
            elif d == self.b_dim:
                out.append((d, sizes.get(d, self.blockB)))
            else:
                out.append((d, dims[d]))
        return out

    def output_run_length(self, sizes: Optional[Dict[int, int]] = None) -> int:
        """Contiguous output run length ("output stride" feature).

        Walk output dims in output order while they are slice-covered and
        full; a partially covered dim contributes its covered size and
        ends the run, and a non-slice dim ends it immediately.
        """
        sizes = sizes or {}
        dims = self.layout.dims
        covered = dict(self._covered_sizes(sizes))
        run = 1
        for d in self.perm.mapping:
            if d not in covered:
                break
            run *= covered[d]
            if covered[d] != dims[d]:
                break
        return run

    # -- Alg. 4 offset arrays --------------------------------------------
    def offset_arrays(
        self, sizes: Optional[Dict[int, int]] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(input_offset[B], out_offset[A*B], sm_out_offset[A*B])``.

        ``sizes`` optionally overrides blocked-dim covered sizes (partial
        slices).  All offsets are element units relative to the block's
        base addresses; ``sm_out_offset`` indexes the row-major
        ``B x A`` buffer.

        Results are cached per variant: every block of one variant shares
        the same three arrays, so :meth:`execute` and :meth:`trace` hit
        the cache after the first block of each variant.  Callers must
        treat the returned arrays as read-only.
        """
        sizes = sizes or {}
        cache_key = tuple(sorted(sizes.items()))
        hit = self._offset_cache.get(cache_key)
        if hit is not None:
            return hit
        dims, in_strides = self.layout.dims, self.layout.strides
        out_strides = self.out_layout.strides
        a_cov = sizes.get(self.a_dim, self.blockA) if self.a_dim is not None else 1
        b_cov = sizes.get(self.b_dim, self.blockB) if self.b_dim is not None else 1
        a_size = self.layout.prefix_volume(self.in_prefix) * a_cov
        b_size = math.prod(dims[d] for d in self.only_out_full) * b_cov

        # input_offset: delinearize rows over the only-out dims.
        oo_extents = [
            (d, dims[d]) for d in self.only_out_full
        ] + ([(self.b_dim, b_cov)] if self.b_dim is not None else [])
        ys = np.arange(b_size, dtype=np.int64)
        in_off = np.zeros(b_size, dtype=np.int64)
        rem = ys.copy()
        for d, e in oo_extents:
            in_off += (rem % e) * in_strides[d]
            rem //= e

        # Write phase: enumerate the slice in output-linear order.
        covered = self._covered_sizes(sizes)
        n = a_size * b_size
        assert math.prod(e for _, e in covered) == n, "slice coverage mismatch"
        ts = np.arange(n, dtype=np.int64)
        out_off = np.zeros(n, dtype=np.int64)
        sm_off = np.zeros(n, dtype=np.int64)
        # Per-dim strides inside the buffer: input-group dims are columns
        # (input order), only-out dims are rows (output order).
        col_stride: Dict[int, int] = {}
        s = 1
        for d in range(self.in_prefix):
            col_stride[d] = s
            s *= dims[d]
        if self.a_dim is not None:
            col_stride[self.a_dim] = s
        row_stride: Dict[int, int] = {}
        s = 1
        for d, e in oo_extents:
            row_stride[d] = s
            s *= e
        rem = ts.copy()
        for d, e in covered:
            digit = rem % e
            rem //= e
            out_off += digit * out_strides[self._out_pos[d]]
            if d in col_stride:
                sm_off += digit * col_stride[d]
            else:
                sm_off += digit * row_stride[d] * a_size
        self._offset_cache[cache_key] = (in_off, out_off, sm_off)
        return in_off, out_off, sm_off

    def tex_array_bytes(self) -> int:
        return (self.B + 2 * self.A * self.B) * 4

    # ------------------------------------------------------------------
    def _sm_off_sample(self) -> np.ndarray:
        return _full_slice_sm_offsets(*self._geometry_key())

    def _conflict_degree_for_pad(self, pad: int, samples: int = 8) -> float:
        """Average bank-conflict degree of the copy-out buffer gather for
        a given row pitch, sampled from the real ``sm_out_offset``."""
        return pad_conflict_degree(
            *self._geometry_key(), int(pad), self.elem_bytes, self.spec, samples
        )

    def smem_read_conflict_degree(self, samples: int = 8) -> float:
        """Average bank-conflict degree of the copy-out buffer gather
        under the kernel's chosen pad."""
        return self._conflict_degree_for_pad(self.pad, samples)

    def _variant_counters(self, sizes: Dict[int, int]) -> KernelCounters:
        # Memoized: Alg. 3 evaluates features() and counters() on many
        # candidates, and both walk the same <=4 variants.
        cache = getattr(self, "_vc_cache", None)
        if cache is None:
            cache = self._vc_cache = {}
        key = tuple(sorted(sizes.items()))
        hit = cache.get(key)
        if hit is not None:
            return hit
        c = self._variant_counters_uncached(sizes)
        cache[key] = c
        return c

    def dram_tx_totals(self) -> Tuple[int, int]:
        """Whole-launch DRAM (load, store) transaction counts via the
        effective-run decomposition (see the OD kernel's counterpart).

        Memoized: selection evaluates this for both the cycles feature
        and the counters of the same candidate.
        """
        if self._dram_tx is None:
            self._dram_tx = dram_transaction_totals(
                self.layout,
                self.perm,
                self.coverage.by_dim,
                self.elem_bytes,
                self.spec,
            )
        return self._dram_tx

    def _variant_counters_uncached(self, sizes: Dict[int, int]) -> KernelCounters:
        c = KernelCounters()
        eb, ws = self.elem_bytes, self.spec.warp_size
        dims = self.layout.dims
        a_cov = sizes.get(self.a_dim, self.blockA) if self.a_dim is not None else 1
        b_cov = sizes.get(self.b_dim, self.blockB) if self.b_dim is not None else 1
        a = self.layout.prefix_volume(self.in_prefix) * a_cov
        b = math.prod(dims[d] for d in self.only_out_full) * b_cov
        vol = a * b

        ld_acc = b * ceil_div(a, ws)
        c.warp_ld_accesses = ld_acc
        st_acc = ceil_div(vol, ws)
        c.warp_st_accesses = st_acc

        c.dram_ld_useful_bytes = vol * eb
        c.dram_st_useful_bytes = vol * eb
        c.lane_slots = (ld_acc + st_acc) * ws
        c.active_lanes = 2 * vol
        c.smem_st_accesses = ld_acc
        c.smem_ld_accesses = st_acc
        degree = self._smem_degree_cache
        c.smem_conflict_cycles = int(round((degree - 1.0) * st_acc))
        c.tex_accesses = ld_acc + 2 * st_acc
        partial = int(bool(sizes) and (a != self.A or b != self.B))
        c.special_ops = 2 * self.layout.rank + (
            4 * (ld_acc + st_acc) if partial else 0
        )
        c.alu_ops = 8 * vol
        return c

    @property
    def _smem_degree_cache(self) -> float:
        if not hasattr(self, "_smem_degree"):
            self._smem_degree = self.smem_read_conflict_degree()
        return self._smem_degree

    def counters(self) -> KernelCounters:
        total = KernelCounters()
        for v in self.coverage.variants():
            total += self._variant_counters(v.sizes).scaled(v.count)
        total.dram_ld_tx, total.dram_st_tx = self.dram_tx_totals()
        if self.coarsen:
            # Coarsening's whole point (Sec. IV-A): the expensive mod/div
            # base decode runs once per launch block; subsequent
            # sub-slices derive their bases by adding strides.
            subs = self.coverage.num_blocks
            blocks = self.launch_geometry.num_blocks
            saved = 2 * self.layout.rank * max(subs - blocks, 0)
            total.special_ops = max(0, total.special_ops - saved)
            total.alu_ops += 2 * max(subs - blocks, 0)
        return total

    def cycles(self) -> float:
        """Sec. V OA cycles: total input+output transactions over all
        full and partial slices (f1 + f2 + f3 + f4 structure), normalized
        by the launch's memory-level parallelism.

        Deviation from the paper (documented in EXPERIMENTS.md): the raw
        transaction count alone leaves a linear model ~35 % off on our
        simulator because the slice-proportional shared-memory footprint
        throttles occupancy hyperbolically; dividing by the achievable
        residency fraction restores a near-linear relationship (the
        paper's NumThreads/TotalSlice features evidently played this role
        on real hardware).
        """
        from repro.gpusim.occupancy import occupancy_for

        ld, st = self.dram_tx_totals()
        total = float(ld + st)
        # Bank-conflict serialization is this kernel's other inefficiency
        # channel (Sec. IV admits it "could suffer from some shared
        # memory bank conflict").  Execution overlaps DRAM and shared
        # memory, so the binding resource is the *max* of the two;
        # express conflicts in transaction-equivalent units (one 128 B
        # transaction buys effective_bandwidth-worth of time, one smem
        # cycle buys an SM cycle) and take the max so conflict-bound
        # configurations become visible to the linear model without
        # polluting bandwidth-bound ones.
        conflict_cycles = sum(
            v.count * self._variant_counters(v.sizes).smem_conflict_cycles
            for v in self.coverage.variants()
        )
        tx_seconds = self.spec.transaction_bytes / self.spec.effective_bandwidth
        cycle_seconds = 1.0 / (self.spec.num_sms * self.spec.clock_hz)
        total = max(total, conflict_cycles * cycle_seconds / tx_seconds)
        occ = occupancy_for(self.spec, self.launch_geometry)
        mlp = min(
            1.0,
            occ.resident_warps_per_sm / self.spec.saturation_warps_per_sm,
        )
        return total / max(mlp, 0.05)

    def features(self) -> Dict[str, float]:
        key = self._geometry_key() + (
            self.pad,
            self.elem_bytes,
            self.spec,
            self.coarsen,
        )
        hit = _FEATURE_CACHE.get(key)
        if hit is None:
            hit = super().features()
            hit.update(
                total_slice=float(self.A * self.B),
                input_stride=float(self.A),
                output_stride=float(self.output_run_length()),
                special_instr=float(
                    sum(
                        v.count * self._variant_counters(v.sizes).special_ops
                        for v in self.coverage.variants()
                    )
                ),
                cycles=float(self.cycles()),
            )
            _FEATURE_CACHE.put(key, hit)
        return dict(hit)

    # ------------------------------------------------------------------
    def execute_key(self) -> tuple:
        return super().execute_key() + (
            self.in_prefix,
            self.blockA,
            self.out_prefix,
            self.blockB,
        )

    def supports_view_lowering(self) -> bool:
        """Lower to a view chain only when the slices tile exactly.

        With no partial-tile variants every block's slice is full, so
        the composed per-block movement is literally the global
        reshape/transpose; the offset arrays are then affine in the
        block coordinates and carry no information a view chain lacks.
        Partial variants keep the cached-index program, which mirrors
        the kernel's real variant-by-variant movement.
        """
        return len(self.coverage.variants_order()) == 1

    def variant_rel_maps(self, sizes: Dict[int, int]) -> Tuple[np.ndarray, np.ndarray]:
        """Relative (source, destination) flat index maps of one variant.

        In output-linear order ``t``: the element written at
        ``out_base + out_off[t]`` is read from
        ``in_base + in_off[sm_off[t] // a] + sm_off[t] % a`` — the
        buffer gather (Alg. 4's ``sm_out_offset``) folded into the
        output scatter, so executors need no shared-memory indirection
        at run time.
        """
        in_off, out_off, sm_off = self.offset_arrays(sizes)
        a_cov = sizes.get(self.a_dim, self.blockA) if self.a_dim is not None else 1
        a = self.layout.prefix_volume(self.in_prefix) * a_cov
        src_rel = slice_gather_rel(in_off, a).reshape(-1)[sm_off]
        return src_rel, out_off

    def execute_per_call(self, src: np.ndarray) -> np.ndarray:
        """The pre-compiled-executor path: rebuild the full gather and
        scatter index tensors on every call.

        Kept as the movement-construction reference (the compiled
        executors must match it bit-for-bit; see ``tests/test_executor
        .py``) and as the baseline ``benchmarks/bench_exec_throughput
        .py`` measures the compiled path against.
        """
        src = self.check_input(src)
        dst = np.empty(self.volume, dtype=src.dtype)
        in_base, out_base, variant = self.coverage.block_bases()
        vorder = self.coverage.variants_order()
        for vid, sizes in enumerate(vorder):
            sel = np.nonzero(variant == vid)[0]
            if sel.size == 0:
                continue
            in_off, out_off, sm_off = self.offset_arrays(sizes)
            a_cov = sizes.get(self.a_dim, self.blockA) if self.a_dim is not None else 1
            a = self.layout.prefix_volume(self.in_prefix) * a_cov
            gather = block_gather_indices(
                in_base[sel], slice_gather_rel(in_off, a)
            )
            buf = src[gather]  # row-major B x A slices, one row per block
            dst[block_gather_indices(out_base[sel], out_off)] = buf[:, sm_off]
        return dst

    # ------------------------------------------------------------------
    def trace(self, max_blocks: Optional[int] = None) -> Iterator[WarpAccess]:
        eb, ws = self.elem_bytes, self.spec.warp_size
        in_base, out_base, variant = self.coverage.block_bases(max_blocks)
        vorder = self.coverage.variants_order()
        for blk in range(len(in_base)):
            sizes = vorder[variant[blk]]
            in_off, out_off, sm_off = self.offset_arrays(sizes)
            a_cov = sizes.get(self.a_dim, self.blockA) if self.a_dim is not None else 1
            a = self.layout.prefix_volume(self.in_prefix) * a_cov
            b = len(in_off)
            ib, ob = int(in_base[blk]), int(out_base[blk])
            pitch = a + self.pad
            for y in range(b):
                yield WarpAccess("tld", np.array([y * 4]), 4, ws)
                for x0 in range(0, a, ws):
                    lanes = np.arange(x0, min(x0 + ws, a), dtype=np.int64)
                    yield WarpAccess("gld", (ib + in_off[y] + lanes) * eb, eb, ws)
                    yield WarpAccess("sst", (y * pitch + lanes) * eb, eb, ws)
            n = a * b
            for t0 in range(0, n, ws):
                ts = np.arange(t0, min(t0 + ws, n), dtype=np.int64)
                padded = (sm_off[ts] // a) * pitch + sm_off[ts] % a
                yield WarpAccess("tld", ts[:1] * 4, 4, ws)
                yield WarpAccess("tld", ts[:1] * 4 + 4, 4, ws)
                yield WarpAccess("sld", padded * eb, eb, ws)
                yield WarpAccess("gst", (ob + out_off[ts]) * eb, eb, ws)
        return
