"""TTGT tensor contraction built on TTLG.

The paper's introduction motivates TTLG's queryable performance model
with the Transpose-Transpose-GEMM-Transpose approach to tensor
contraction: transpose the inputs into GEMM-friendly layouts, multiply,
transpose the result back.  The layout choice matters, and a TTGT
planner picks it by *querying the transposition performance model* —
exactly what :func:`repro.core.api.predict_time` exposes.
"""

from repro.ttgt.spec import ContractionSpec, parse_contraction
from repro.ttgt.contraction import (
    TTGTPlan,
    contract,
    contract_many,
    plan_contraction,
)

__all__ = [
    "ContractionSpec",
    "parse_contraction",
    "TTGTPlan",
    "plan_contraction",
    "contract",
    "contract_many",
]
