"""Ablation: thread coarsening (Sec. IV-A).

Sweeps the coarsening factor on an Orthogonal-Arbitrary kernel and
reports block count, special-instruction count, and simulated time —
showing both the decode amortization the paper claims and the
occupancy/tail risk it warns about (why coarsening is gated on tensor
size and one heuristic dimension).
"""

from conftest import write_result

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.gpusim.cost import CostModel
from repro.kernels.orthogonal_arbitrary import OrthogonalArbitraryKernel

DIMS = (16, 8, 16, 16, 16, 8)
PERM = (2, 1, 4, 3, 0, 5)


def build(coarsen):
    return OrthogonalArbitraryKernel(
        TensorLayout(DIMS), Permutation(PERM), 2, 1, 2, 1, coarsen=coarsen
    )


def test_ablation_coarsening(benchmark):
    cm = CostModel()
    base = build(None)
    c_dim = base.coverage.outer_dims()[0]
    lines = [
        f"Ablation — thread coarsening (dims {DIMS}, perm {PERM}, "
        f"coarsened dim {c_dim})",
        f"{'factor':>7s} {'blocks':>8s} {'special ops':>12s} "
        f"{'time ms':>9s}",
    ]
    times = {}
    for factor in (1, 2, 4, 8):
        k = base if factor == 1 else build((c_dim, factor))
        c = k.counters()
        t = k.simulated_time(cm)
        times[factor] = t
        lines.append(
            f"{factor:>7d} {k.launch_geometry.num_blocks:>8d} "
            f"{c.special_ops:>12d} {t * 1e3:>9.4f}"
        )
    text = "\n".join(lines)
    print(text)
    write_result("ablation_coarsening", text)

    # Data movement is identical, so times stay within a few percent;
    # the special-op savings must be monotone in the factor.
    specials = [build((c_dim, f)).counters().special_ops for f in (2, 4, 8)]
    assert specials == sorted(specials, reverse=True)
    assert max(times.values()) < 1.1 * min(times.values())

    benchmark(lambda: build((c_dim, 8)).counters())
